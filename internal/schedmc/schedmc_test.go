package schedmc

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/sched"
)

func mustLU(t testing.TB, k int) *dag.Graph {
	t.Helper()
	g, err := linalg.Generate(linalg.FactLU, k, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustModel(t testing.TB, g *dag.Graph, pfail float64) failure.Model {
	t.Helper()
	m, err := failure.FromPfail(pfail, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The compiled schedule DAG must reproduce the simulated failure-free
// schedule bit for bit, for both policies across shapes and processor
// counts (Freeze itself verifies the invariant; this exercises it).
func TestFreezeMatchesListSchedule(t *testing.T) {
	for _, kind := range linalg.All() {
		for _, k := range []int{2, 5, 8} {
			g, err := linalg.Generate(kind, k, linalg.KernelTimes{})
			if err != nil {
				t.Fatal(err)
			}
			model := mustModel(t, g, 0.01)
			for _, procs := range []int{1, 3, 7, 64} {
				for _, pol := range AllPolicies() {
					fs, err := Freeze(g, pol, procs, model)
					if err != nil {
						t.Fatalf("%s k=%d procs=%d %s: %v", kind, k, procs, pol, err)
					}
					prio, err := pol.Priorities(g, model)
					if err != nil {
						t.Fatal(err)
					}
					base, err := sched.ListSchedule(g, prio, procs)
					if err != nil {
						t.Fatal(err)
					}
					if fs.Makespan != base.Makespan {
						t.Fatalf("%s k=%d procs=%d %s: frozen %v != simulated %v",
							kind, k, procs, pol, fs.Makespan, base.Makespan)
					}
					if fs.Frozen.Makespan() != base.Makespan {
						t.Fatalf("schedule DAG longest path %v != %v", fs.Frozen.Makespan(), base.Makespan)
					}
					if eff := fs.Efficiency(); eff <= 0 || eff > 1+1e-12 {
						t.Fatalf("efficiency %v outside (0,1]", eff)
					}
				}
			}
		}
	}
}

// On one processor the schedule is a total order: the schedule DAG's
// makespan is the serial sum of all weights.
func TestSingleProcessorSerializes(t *testing.T) {
	g := mustLU(t, 6)
	fs, err := Freeze(g, PolicyCP, 1, failure.Model{})
	if err != nil {
		t.Fatal(err)
	}
	want := g.TotalWeight()
	if diff := fs.Makespan - want; diff > 1e-9*want || diff < -1e-9*want {
		t.Fatalf("1-proc makespan %v, total weight %v", fs.Makespan, want)
	}
}

// Chain edges on a handcrafted diamond: two independent middle tasks on
// one processor must be chained; the chain respects dispatch order.
func TestChainEdgesDiamond(t *testing.T) {
	g := dag.New(4)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 2)
	c := g.MustAddTask("c", 3)
	d := g.MustAddTask("d", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	fs, err := Freeze(g, PolicyCP, 1, failure.Model{})
	if err != nil {
		t.Fatal(err)
	}
	// Serial execution: every consecutive dispatch pair not already a
	// precedence edge becomes a chain edge — here exactly (c,b) or (b,c).
	if fs.ChainEdges != 1 {
		t.Fatalf("want 1 chain edge, got %d", fs.ChainEdges)
	}
	// Priorities: bl(b)+w = 2+1+... c has higher bottom level (3+1)+3? CP
	// priority of b = 2+1 = 3, of c = 3+1 = 4, so c dispatches first.
	if !fs.Graph.HasEdge(c, b) {
		t.Fatal("expected chain edge c -> b (c has the higher bottom level)")
	}
	if fs.Makespan != 7 {
		t.Fatalf("serial makespan %v, want 7", fs.Makespan)
	}
	// On two processors b and c overlap: no chain edge between them.
	fs2, err := Freeze(g, PolicyCP, 2, failure.Model{})
	if err != nil {
		t.Fatal(err)
	}
	if fs2.ChainEdges != 0 {
		t.Fatalf("2-proc diamond wants 0 chain edges, got %d", fs2.ChainEdges)
	}
	if fs2.Makespan != 5 {
		t.Fatalf("2-proc makespan %v, want 5 (a + c + d)", fs2.Makespan)
	}
}

// Configuration errors must surface at construction, matching the
// montecarlo.Config convention.
func TestConfigValidation(t *testing.T) {
	g := mustLU(t, 4)
	model := mustModel(t, g, 0.01)
	if _, err := Freeze(g, PolicyCP, 0, model); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, err := Freeze(g, Policy("bogus"), 2, model); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(g, PolicyCP, 2, model, Config{Trials: -1}); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := New(g, PolicyCP, 2, model, Config{Workers: -2}); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestParsePolicies(t *testing.T) {
	for _, sel := range []string{"", "both", "all"} {
		ps, err := ParsePolicies(sel)
		if err != nil || len(ps) != 2 {
			t.Fatalf("ParsePolicies(%q) = %v, %v", sel, ps, err)
		}
	}
	ps, err := ParsePolicies("fo")
	if err != nil || len(ps) != 1 || ps[0] != PolicyFirstOrder {
		t.Fatalf("ParsePolicies(fo) = %v, %v", ps, err)
	}
	ps, err = ParsePolicies("cp, fo")
	if err != nil || len(ps) != 2 {
		t.Fatalf("ParsePolicies(cp, fo) = %v, %v", ps, err)
	}
	if _, err := ParsePolicies("heft"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := ParsePolicies(","); err == nil {
		t.Error("empty list accepted")
	}
}

// With a zero failure rate every trial evaluates to the committed
// schedule's makespan, exactly.
func TestZeroLambdaDegenerate(t *testing.T) {
	g := mustLU(t, 5)
	e, err := New(g, PolicyCP, 4, failure.Model{}, Config{Trials: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != e.Schedule().Makespan || res.StdDev != 0 || res.Min != res.Max {
		t.Fatalf("zero-λ run not degenerate: %+v (schedule %v)", res, e.Schedule().Makespan)
	}
}

// WithConfig must be indistinguishable from a cold build with the same
// configuration, and must reject what montecarlo rejects.
func TestWithConfigMatchesCold(t *testing.T) {
	g := mustLU(t, 6)
	model := mustModel(t, g, 0.02)
	warm, err := New(g, PolicyFirstOrder, 4, model, Config{Trials: 1, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	re, err := warm.WithConfig(Config{Trials: 5000, Seed: 77, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(g, PolicyFirstOrder, 4, model, Config{Trials: 5000, Seed: 77, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rw != rc {
		t.Fatalf("warm %+v != cold %+v", rw, rc)
	}
	if re.Schedule() != warm.Schedule() {
		t.Error("WithConfig must share the frozen schedule")
	}
	if _, err := warm.WithConfig(Config{Trials: -3}); err == nil {
		t.Error("negative trials accepted by WithConfig")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	g := mustLU(t, 6)
	model := mustModel(t, g, 0.01)
	e, err := New(g, PolicyCP, 4, model, Config{Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.SizeBytes() <= e.Schedule().SizeBytes() || e.Schedule().SizeBytes() <= 0 {
		t.Fatalf("implausible sizes: estimator %d, schedule %d", e.SizeBytes(), e.Schedule().SizeBytes())
	}
}
