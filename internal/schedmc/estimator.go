package schedmc

import (
	"context"
	"fmt"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/montecarlo"
)

// Config parameterizes a scheduled-makespan Monte Carlo run. It mirrors
// montecarlo.Config (and is validated by it): zero Trials selects the
// engine default, zero Workers selects GOMAXPROCS, negative values are
// configuration errors, and results are bit-identical for any Workers.
type Config struct {
	// Trials is the number of sampled schedule executions
	// (0 = montecarlo.DefaultTrials; negative is a configuration error).
	Trials int
	// Workers is the number of evaluation goroutines (0 = GOMAXPROCS;
	// negative is a configuration error). The result does not depend on it.
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
	// Mode selects the re-execution model (default FullReexecution).
	Mode montecarlo.Mode

	// Tolerance > 0 selects adaptive sequential stopping, with exactly
	// montecarlo.Config's semantics: run whole chunks until the target
	// statistic's CI half-width is within tolerance (Trials must then
	// be 0).
	Tolerance float64
	// TargetQuantile, when nonzero, watches that quantile's CI instead of
	// the mean's (adaptive mode only; must lie in (0,1)).
	TargetQuantile float64
	// Confidence is the stopping rule's confidence level
	// (0 = montecarlo.DefaultConfidence; adaptive mode only).
	Confidence float64
	// MaxTrials caps an adaptive run, rounded up to whole chunks
	// (0 = montecarlo.DefaultTrials; adaptive mode only).
	MaxTrials int
}

// mcConfig translates the schedule-level config to the engine's.
func (c Config) mcConfig() montecarlo.Config {
	return montecarlo.Config{
		Trials:         c.Trials,
		Workers:        c.Workers,
		Seed:           c.Seed,
		Mode:           c.Mode,
		Tolerance:      c.Tolerance,
		TargetQuantile: c.TargetQuantile,
		Confidence:     c.Confidence,
		MaxTrials:      c.MaxTrials,
	}
}

// Estimator runs fused Monte Carlo trials over a frozen schedule: per
// task, the first-attempt failure probability 1 − e^{−λa} and an
// inverted-geometric re-execution count are sampled exactly as in the
// unbounded-processor engine, and the longest path through the schedule
// DAG — the scheduled makespan — is evaluated by the same scalar and
// lane-blocked CSR kernels. An Estimator is an immutable snapshot safe
// for concurrent runs; derive per-request variants with WithConfig.
type Estimator struct {
	fs *FrozenSchedule
	mc *montecarlo.Estimator
}

// NewEstimator compiles the Monte Carlo engine (per-task probabilities,
// sampler threshold tables) for the frozen schedule under the failure
// model. The heavy artifacts are shared with nothing and cached by the
// makespand registry per (graph, policy, procs, λ).
func NewEstimator(fs *FrozenSchedule, model failure.Model, cfg Config) (*Estimator, error) {
	mc, err := montecarlo.NewEstimatorFrozen(fs.Frozen, model, cfg.mcConfig())
	if err != nil {
		return nil, err
	}
	// Cross-layer sanity: the engine's failure-free makespan (every
	// zero-failure trial's value) must be the committed schedule's
	// makespan — a mismatch means the snapshot layers disagree.
	if d0 := mc.D0(); d0 != fs.Makespan {
		return nil, fmt.Errorf("schedmc: internal error: engine d0 %v != schedule makespan %v", d0, fs.Makespan)
	}
	return &Estimator{fs: fs, mc: mc}, nil
}

// New freezes a schedule for g under the policy and builds its estimator
// in one step — the cold path of schedsim and of a service cache miss.
func New(g *dag.Graph, policy Policy, procs int, model failure.Model, cfg Config) (*Estimator, error) {
	fs, err := Freeze(g, policy, procs, model)
	if err != nil {
		return nil, err
	}
	return NewEstimator(fs, model, cfg)
}

// Schedule returns the frozen schedule the estimator runs on.
func (e *Estimator) Schedule() *FrozenSchedule { return e.fs }

// Run executes the configured trials and returns the expected-makespan
// estimate. The result depends only on (Seed, Trials, Mode) — never on
// Workers (see montecarlo's chunked streams).
func (e *Estimator) Run() (montecarlo.Result, error) { return e.mc.Run() }

// RunContext is Run with cancellation at chunk boundaries
// (montecarlo.Estimator.RunContext semantics verbatim: a cancelled run
// returns ctx.Err() and never a partial estimate).
func (e *Estimator) RunContext(ctx context.Context) (montecarlo.Result, error) {
	return e.mc.RunContext(ctx)
}

// RunQuantiles is Run plus a mergeable quantile sketch of the scheduled
// makespan distribution, also worker-count invariant.
func (e *Estimator) RunQuantiles() (montecarlo.Result, *montecarlo.QuantileSketch, error) {
	return e.mc.RunQuantiles()
}

// RunQuantilesContext is RunQuantiles with cancellation at chunk
// boundaries.
func (e *Estimator) RunQuantilesContext(ctx context.Context) (montecarlo.Result, *montecarlo.QuantileSketch, error) {
	return e.mc.RunQuantilesContext(ctx)
}

// WithConfig returns an estimator sharing this one's compiled snapshot —
// frozen schedule, probability arrays and threshold tables — under a
// different (Trials, Seed, Workers). Construction is O(1); Mode cannot
// change (montecarlo.Estimator.WithConfig enforces it). This is what
// lets a warm POST /v1/schedule skip schedule freezing and table builds.
func (e *Estimator) WithConfig(cfg Config) (*Estimator, error) {
	mc, err := e.mc.WithConfig(cfg.mcConfig())
	if err != nil {
		return nil, err
	}
	return &Estimator{fs: e.fs, mc: mc}, nil
}

// ResumeAdaptive runs the adaptive stopping loop over the schedule DAG,
// optionally extending a previous snapshot — montecarlo.Estimator's
// ResumeAdaptive semantics verbatim (prefix-deterministic, chunk-aligned,
// cap always binds). The snapshot can later answer quantile queries and be
// extended to a tighter tolerance bit-identically to a cold run.
func (e *Estimator) ResumeAdaptive(prev *montecarlo.Snapshot, progress func(*montecarlo.Snapshot) bool) (montecarlo.Result, *montecarlo.Snapshot, error) {
	return e.mc.ResumeAdaptive(prev, progress)
}

// ResumeAdaptiveContext is ResumeAdaptive with cancellation at chunk
// boundaries: a cancelled run returns ctx.Err() with neither Result nor
// Snapshot, leaving prev untouched and extendable.
func (e *Estimator) ResumeAdaptiveContext(ctx context.Context, prev *montecarlo.Snapshot, progress func(*montecarlo.Snapshot) bool) (montecarlo.Result, *montecarlo.Snapshot, error) {
	return e.mc.ResumeAdaptiveContext(ctx, prev, progress)
}

// SnapshotConverged reports whether snap already satisfies this
// estimator's adaptive stopping rule (no trials run).
func (e *Estimator) SnapshotConverged(snap *montecarlo.Snapshot) bool {
	return e.mc.SnapshotConverged(snap)
}

// SnapshotResult derives the Result this estimator's adaptive config would
// report at snap's state, without running trials.
func (e *Estimator) SnapshotResult(snap *montecarlo.Snapshot) (montecarlo.Result, error) {
	return e.mc.SnapshotResult(snap)
}

// SizeBytes reports the approximate retained size of the estimator: the
// frozen schedule plus the Monte Carlo snapshot (probability arrays and
// sampler tables). Registry byte budgeting uses it.
func (e *Estimator) SizeBytes() int64 {
	return e.fs.SizeBytes() + e.mc.SizeBytes()
}

// Estimate is a convenience wrapper: freeze g's schedule under the
// policy, apply the overheads, run cfg.Trials sampled executions and
// return the result alongside the frozen schedule it ran on.
func Estimate(g *dag.Graph, policy Policy, procs int, model failure.Model, over Overheads, cfg Config) (montecarlo.Result, *FrozenSchedule, error) {
	tg, tm, err := over.Apply(g, model)
	if err != nil {
		return montecarlo.Result{}, nil, err
	}
	e, err := New(tg, policy, procs, tm, cfg)
	if err != nil {
		return montecarlo.Result{}, nil, err
	}
	res, err := e.Run()
	return res, e.fs, err
}
