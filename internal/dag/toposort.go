package dag

// TopoOrder returns the task IDs in a topological order computed with
// Kahn's algorithm, or ErrCycle if the graph has a cycle. Ties are broken
// by smallest ID, so the order is deterministic.
func (g *Graph) TopoOrder() ([]int, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	// Min-ID frontier kept as a simple binary heap for deterministic output.
	heap := make([]int, 0, n)
	push := func(v int) {
		heap = append(heap, v)
		for c := len(heap) - 1; c > 0; {
			p := (c - 1) / 2
			if heap[p] <= heap[c] {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			c = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for p := 0; ; {
			l, r := 2*p+1, 2*p+2
			m := p
			if l < last && heap[l] < heap[m] {
				m = l
			}
			if r < last && heap[r] < heap[m] {
				m = r
			}
			if m == p {
				break
			}
			heap[p], heap[m] = heap[m], heap[p]
			p = m
		}
		return top
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			push(i)
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		v := pop()
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				push(s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph is a DAG.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Levels partitions tasks into precedence levels: level 0 holds the
// sources; level l+1 holds tasks whose deepest predecessor is at level l.
// The graph must be acyclic.
func (g *Graph) Levels() ([][]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.NumTasks())
	maxDepth := 0
	for _, v := range order {
		d := 0
		for _, p := range g.pred[v] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]int, maxDepth+1)
	for _, v := range order {
		levels[depth[v]] = append(levels[depth[v]], v)
	}
	return levels, nil
}

// Depth returns the number of precedence levels (longest chain in edges,
// plus one). An empty graph has depth 0.
func (g *Graph) Depth() (int, error) {
	if g.NumTasks() == 0 {
		return 0, nil
	}
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	return len(levels), nil
}

// Width returns the size of the largest precedence level.
func (g *Graph) Width() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	w := 0
	for _, l := range levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w, nil
}
