// Command benchcheck is the bench-regression canary: it compares freshly
// generated BENCH_*.json files (scripts/bench.sh) against the committed
// baselines and fails when a headline metric regressed beyond the noise
// tolerance, when the service cache-hit benchmark no longer shows a
// warm estimate being at least -min-warm-ratio times cheaper than a cold
// one, when the frozen-schedule engine drops below -min-sched-ratio
// times the speed of the legacy re-scheduling loop it replaced, when
// adaptive stopping no longer beats the fixed default budget by at least
// -min-adaptive-ratio at equal achieved quantile CI, when extending a
// warm snapshot drops below -min-extend-ratio times the speed of the
// equivalent cold adaptive run, or when the artifact resolver's warm hit
// stops being at least -min-artifact-ratio times cheaper than the cold
// build it replaces.
//
// With -load-only it instead gates the tail-latency load profile alone:
// fresh BENCH_load.json (scripts/load.sh) must show zero errors, zero
// sheds, an achieved launch rate within 10% of the requested one, and
// p50/p95/p99 no worse than the committed baseline times
// (1 + -load-tolerance). The load tolerance is deliberately loose
// (default +100%): CI runners are shared and tail latency is the
// noisiest statistic measured here — the gate exists to catch
// order-of-magnitude regressions (a lock on the hot path, accidental
// per-request recompilation), not 20% drift.
//
// With -cluster-only it gates the cluster load profile
// (BENCH_cluster.json from scripts/load.sh -cluster): the same hard
// invariants, plus the fleet warm-cache hit ratio must stay at least
// -min-fleet-warm (consistent-hash routing keeps each shard on one
// replica's warm cache) and the front's p99 must stay within
// -cluster-tolerance of the committed single-replica BENCH_load.json.
// The modes are disjoint so the kernel-bench canary job and the
// live-daemon load job can each generate only the files they gate.
//
// Usage:
//
//	go run ./scripts/benchcheck -baseline . -fresh out [-tolerance 0.25]
//	go run ./scripts/benchcheck -load-only -baseline . -fresh load-out
//	go run ./scripts/benchcheck -cluster-only -baseline . -fresh cluster-out
//
// Comparison uses best_ns_op — the minimum across bench.sh's repeated
// samples — which is the most noise-robust point estimate on shared CI
// runners; the tolerance (default +25%) absorbs the rest of the runner
// jitter. Only the headline benchmarks gate; everything else in the
// files is informational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

type benchFile struct {
	Results []entry `json:"results"`
}

type entry struct {
	Name     string  `json:"name"`
	BestNsOp float64 `json:"best_ns_op"`
}

// headline lists the gating benchmarks per file. A baseline file may
// predate a benchmark (first PR that adds it); gating starts once the
// baseline holds it.
var headline = map[string][]string{
	"BENCH_mc.json": {
		"BenchmarkMCFusedLU20",
		"BenchmarkTable1MonteCarloLU20",
		"BenchmarkFrozenEvalLU20",
	},
	"BENCH_dodin.json": {
		"BenchmarkTable1DodinLU16",
		"BenchmarkTable1DodinLU20",
	},
	"BENCH_sweep.json": {
		"BenchmarkSweepLU10",
		"BenchmarkMCHighPfailLU20",
		"BenchmarkDodinPlanReplayLU16",
	},
	"BENCH_service.json": {
		"BenchmarkServiceEstimateWarm",
		"BenchmarkServiceEstimateCold",
		"BenchmarkServiceSweepWarm",
	},
	"BENCH_sched.json": {
		"BenchmarkSchedMCLU16",
		"BenchmarkSchedMCWarmLU16",
		"BenchmarkSchedFreezeLU16",
	},
	"BENCH_adaptive.json": {
		"BenchmarkAdaptiveStopLU10",
		"BenchmarkAdaptiveWarmExtendLU10",
	},
	"BENCH_artifact.json": {
		"BenchmarkArtifactGraphWarm",
		"BenchmarkArtifactEstimatorCold",
		"BenchmarkArtifactScheduleCold",
	},
}

// ratioGate checks that two benchmarks in one fresh file keep a minimum
// best_ns_op ratio (slow/fast >= min). Returns 1 on failure for the
// caller's failure count.
func ratioGate(freshDir, file, label, slowName, fastName string, min float64) int {
	fresh, err := load(filepath.Join(freshDir, file))
	if err != nil {
		fatal(fmt.Errorf("%s needed for the %s gate: %w", file, label, err))
	}
	slow, okS := fresh[slowName]
	fast, okF := fresh[fastName]
	if !okS || !okF {
		fatal(fmt.Errorf("%s pair missing from fresh %s", label, file))
	}
	ratio := slow.BestNsOp / fast.BestNsOp
	status := "ok  "
	fails := 0
	if ratio < min {
		status = "FAIL"
		fails = 1
	}
	fmt.Printf("%s %-40s %.1fx (minimum %.1fx)\n", status, label, ratio, min)
	return fails
}

// loadReport mirrors cmd/loadgen's report document; only the gated
// fields are decoded. The cluster section is scripts/load.sh -cluster's
// addition: fleet-summed replica cache counters.
type loadReport struct {
	Profile struct {
		RPS float64 `json:"rps"`
	} `json:"profile"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`
	LatencyMS   struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
	} `json:"latency_ms"`
	Cluster *struct {
		Replicas   int `json:"replicas"`
		FleetCache struct {
			Hits         int64   `json:"hits"`
			Misses       int64   `json:"misses"`
			WarmHitRatio float64 `json:"warm_hit_ratio"`
		} `json:"fleet_cache"`
	} `json:"cluster"`
}

func loadLoadReport(path string) (*loadReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r loadReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// checkLoad gates the fixed-RPS load profile: hard invariants on the
// fresh run (it must have been clean and on-rate, or its percentiles
// are meaningless), then tail percentiles against the baseline.
func checkLoad(baseDir, freshDir string, tolerance float64) int {
	const file = "BENCH_load.json"
	fresh, err := loadLoadReport(filepath.Join(freshDir, file))
	if err != nil {
		fatal(fmt.Errorf("fresh results missing (did scripts/load.sh run?): %w", err))
	}
	failures := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}
	check(fresh.Errors == 0, "%-40s %d (must be 0)", "load profile errors", fresh.Errors)
	check(fresh.Shed == 0, "%-40s %d (must be 0)", "load profile sheds", fresh.Shed)
	check(fresh.OK == fresh.Requests, "%-40s %d/%d", "load profile ok requests", fresh.OK, fresh.Requests)
	// An open-loop generator that fell behind its own schedule measured
	// a lighter profile than requested; refuse to compare percentiles.
	check(fresh.AchievedRPS >= 0.9*fresh.Profile.RPS,
		"%-40s %.1f (requested %.1f, minimum %.1f)", "load profile achieved rps",
		fresh.AchievedRPS, fresh.Profile.RPS, 0.9*fresh.Profile.RPS)

	base, err := loadLoadReport(filepath.Join(baseDir, file))
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("skip %-20s no committed baseline yet\n", file)
			return failures
		}
		fatal(err)
	}
	for _, q := range []struct {
		name        string
		base, fresh float64
	}{
		{"p50", base.LatencyMS.P50, fresh.LatencyMS.P50},
		{"p95", base.LatencyMS.P95, fresh.LatencyMS.P95},
		{"p99", base.LatencyMS.P99, fresh.LatencyMS.P99},
	} {
		limit := q.base * (1 + tolerance)
		check(q.fresh <= limit, "%-40s base %8.3f ms  fresh %8.3f ms  (limit %.3f ms)",
			"load latency "+q.name, q.base, q.fresh, limit)
	}
	return failures
}

// checkCluster gates the cluster load profile (BENCH_cluster.json from
// scripts/load.sh -cluster): the same hard invariants as the
// single-replica profile, the fleet warm-cache hit ratio floor — the
// number that proves consistent-hash routing kept each shard on one
// replica's warm cache — and p99 against the committed single-replica
// BENCH_load.json (the front must not cost more than the tolerance on
// top of one daemon; the cluster's own baseline is informational).
func checkCluster(baseDir, freshDir string, tolerance, minWarm float64) int {
	fresh, err := loadLoadReport(filepath.Join(freshDir, "BENCH_cluster.json"))
	if err != nil {
		fatal(fmt.Errorf("fresh results missing (did scripts/load.sh -cluster run?): %w", err))
	}
	failures := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}
	check(fresh.Errors == 0, "%-40s %d (must be 0)", "cluster profile errors", fresh.Errors)
	check(fresh.Shed == 0, "%-40s %d (must be 0)", "cluster profile sheds", fresh.Shed)
	check(fresh.OK == fresh.Requests, "%-40s %d/%d", "cluster profile ok requests", fresh.OK, fresh.Requests)
	check(fresh.AchievedRPS >= 0.9*fresh.Profile.RPS,
		"%-40s %.1f (requested %.1f, minimum %.1f)", "cluster profile achieved rps",
		fresh.AchievedRPS, fresh.Profile.RPS, 0.9*fresh.Profile.RPS)
	if fresh.Cluster == nil {
		check(false, "%-40s missing", "cluster fleet_cache section")
		return failures
	}
	check(fresh.Cluster.FleetCache.WarmHitRatio >= minWarm,
		"%-40s %.3f (%d hits / %d misses, minimum %.2f)", "fleet warm-cache hit ratio",
		fresh.Cluster.FleetCache.WarmHitRatio,
		fresh.Cluster.FleetCache.Hits, fresh.Cluster.FleetCache.Misses, minWarm)

	base, err := loadLoadReport(filepath.Join(baseDir, "BENCH_load.json"))
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("skip %-20s no committed single-replica baseline yet\n", "BENCH_load.json")
			return failures
		}
		fatal(err)
	}
	limit := base.LatencyMS.P99 * (1 + tolerance)
	check(fresh.LatencyMS.P99 <= limit,
		"%-40s single %8.3f ms  cluster %8.3f ms  (limit %.3f ms)",
		"cluster p99 vs single replica", base.LatencyMS.P99, fresh.LatencyMS.P99, limit)
	return failures
}

func load(path string) (map[string]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]entry, len(f.Results))
	for _, e := range f.Results {
		out[e.Name] = e
	}
	return out, nil
}

func main() {
	baseDir := flag.String("baseline", ".", "directory holding the committed BENCH_*.json baselines")
	freshDir := flag.String("fresh", "out", "directory holding freshly generated BENCH_*.json files")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative slowdown of best_ns_op before failing")
	warmRatio := flag.Float64("min-warm-ratio", 5, "required cold/warm ratio of the service estimate pair (0 disables)")
	schedRatio := flag.Float64("min-sched-ratio", 10, "required legacy/frozen ratio of the schedsim engine pair (0 disables)")
	adaptiveRatio := flag.Float64("min-adaptive-ratio", 2, "required fixed/adaptive ratio at equal quantile CI (0 disables)")
	extendRatio := flag.Float64("min-extend-ratio", 3, "required cold/warm ratio of the snapshot-extension pair (0 disables)")
	artifactRatio := flag.Float64("min-artifact-ratio", 10, "required cold/warm ratio of the artifact estimator pair (0 disables)")
	loadOnly := flag.Bool("load-only", false, "gate only the BENCH_load.json tail-latency profile")
	loadTolerance := flag.Float64("load-tolerance", 1.0, "allowed relative tail-latency slowdown in -load-only mode")
	clusterOnly := flag.Bool("cluster-only", false, "gate only the BENCH_cluster.json cluster load profile")
	clusterTolerance := flag.Float64("cluster-tolerance", 2.0, "allowed relative p99 cost of the lb front over the single-replica baseline in -cluster-only mode")
	minFleetWarm := flag.Float64("min-fleet-warm", 0.9, "required fleet warm-cache hit ratio in -cluster-only mode")
	flag.Parse()

	if *loadOnly {
		if failures := checkLoad(*baseDir, *freshDir, *loadTolerance); failures > 0 {
			fmt.Printf("\nbenchcheck: %d failure(s)\n", failures)
			os.Exit(1)
		}
		fmt.Println("\nbenchcheck: load profile within tolerance")
		return
	}
	if *clusterOnly {
		if failures := checkCluster(*baseDir, *freshDir, *clusterTolerance, *minFleetWarm); failures > 0 {
			fmt.Printf("\nbenchcheck: %d failure(s)\n", failures)
			os.Exit(1)
		}
		fmt.Println("\nbenchcheck: cluster profile within tolerance")
		return
	}

	failures := 0
	for file, names := range headline {
		base, err := load(filepath.Join(*baseDir, file))
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Printf("skip %-20s no committed baseline yet\n", file)
				continue
			}
			fatal(err)
		}
		fresh, err := load(filepath.Join(*freshDir, file))
		if err != nil {
			fatal(fmt.Errorf("fresh results missing (did scripts/bench.sh run?): %w", err))
		}
		for _, name := range names {
			b, ok := base[name]
			if !ok {
				fmt.Printf("skip %-40s not in baseline %s\n", name, file)
				continue
			}
			f, ok := fresh[name]
			if !ok {
				fmt.Printf("FAIL %-40s missing from fresh %s\n", name, file)
				failures++
				continue
			}
			limit := b.BestNsOp * (1 + *tolerance)
			ratio := f.BestNsOp / b.BestNsOp
			status := "ok  "
			if f.BestNsOp > limit {
				status = "FAIL"
				failures++
			}
			fmt.Printf("%s %-40s base %14.0f ns/op  fresh %14.0f ns/op  (%.2fx, limit %.2fx)\n",
				status, name, b.BestNsOp, f.BestNsOp, ratio, 1+*tolerance)
		}
	}

	if *warmRatio > 0 {
		fresh, err := load(filepath.Join(*freshDir, "BENCH_service.json"))
		if err != nil {
			fatal(fmt.Errorf("BENCH_service.json needed for the warm-ratio gate: %w", err))
		}
		cold, okC := fresh["BenchmarkServiceEstimateCold"]
		warm, okW := fresh["BenchmarkServiceEstimateWarm"]
		if !okC || !okW {
			fatal(fmt.Errorf("service estimate pair missing from fresh BENCH_service.json"))
		}
		ratio := cold.BestNsOp / warm.BestNsOp
		status := "ok  "
		if ratio < *warmRatio {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-40s cold/warm = %.1fx (minimum %.1fx)\n",
			status, "service cache-hit speedup", ratio, *warmRatio)
	}

	if *schedRatio > 0 {
		// The PR 5 acceptance criterion: the frozen-schedule engine must
		// stay >= 10x faster than the dynamic re-scheduling loop it
		// replaced (LU k=16, 8 procs, 2000 trials).
		fresh, err := load(filepath.Join(*freshDir, "BENCH_sched.json"))
		if err != nil {
			fatal(fmt.Errorf("BENCH_sched.json needed for the sched-ratio gate: %w", err))
		}
		legacy, okL := fresh["BenchmarkSchedsimLegacyLU16"]
		frozen, okF := fresh["BenchmarkSchedMCLU16"]
		if !okL || !okF {
			fatal(fmt.Errorf("schedsim engine pair missing from fresh BENCH_sched.json"))
		}
		ratio := legacy.BestNsOp / frozen.BestNsOp
		status := "ok  "
		if ratio < *schedRatio {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-40s legacy/frozen = %.1fx (minimum %.1fx)\n",
			status, "schedsim engine speedup", ratio, *schedRatio)
	}

	if *adaptiveRatio > 0 {
		// The PR 6 acceptance criterion, part 1: at equal achieved quantile
		// CI (the adaptive run's tolerance is the fixed run's measured q=0.9
		// CI half-width), sequential stopping must spend >= 2x fewer trials —
		// measured here as wall clock, which is proportional to trials on one
		// graph (LU k=10, 1,155 tasks).
		failures += ratioGate(*freshDir, "BENCH_adaptive.json", "adaptive trials saving",
			"BenchmarkAdaptiveFixedBudgetLU10", "BenchmarkAdaptiveStopLU10", *adaptiveRatio)
	}
	if *extendRatio > 0 {
		// Part 2: a tighten-tolerance request that resumes the retained
		// snapshot must be >= 3x faster than re-running the whole prefix
		// cold (both land on the identical result, pinned by the engine's
		// warm-extension tests).
		failures += ratioGate(*freshDir, "BENCH_adaptive.json", "adaptive warm-extend speedup",
			"BenchmarkAdaptiveColdRestartLU10", "BenchmarkAdaptiveWarmExtendLU10", *extendRatio)
	}
	if *artifactRatio > 0 {
		// The PR 7 acceptance criterion: a warm resolver hit (key lookup +
		// LRU touch) must stay far cheaper than the cold estimator compile
		// it replaces — in practice the measured ratio is in the hundreds;
		// 10x is the alarm threshold for a hit path gone quadratic or a
		// rule silently rebuilding per request.
		failures += ratioGate(*freshDir, "BENCH_artifact.json", "artifact warm-hit speedup",
			"BenchmarkArtifactEstimatorCold", "BenchmarkArtifactEstimatorWarm", *artifactRatio)
	}

	if failures > 0 {
		fmt.Printf("\nbenchcheck: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nbenchcheck: all headline metrics within tolerance")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
