package dag

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMakespan is the reference slice-of-slices longest-path recurrence
// the frozen kernel must reproduce bit for bit.
func naiveMakespan(g *Graph, weights []float64) float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	comp := make([]float64, g.NumTasks())
	best := 0.0
	for _, v := range order {
		start := 0.0
		for _, p := range g.Pred(v) {
			if comp[p] > start {
				start = comp[p]
			}
		}
		comp[v] = start + weights[v]
		if comp[v] > best {
			best = comp[v]
		}
	}
	return best
}

// shuffledCopy returns g with task IDs permuted, so the topological order
// is not the identity and the gather/scatter paths are exercised.
func shuffledCopy(t *testing.T, g *Graph, seed int64) (*Graph, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := g.NumTasks()
	perm := rng.Perm(n) // perm[old] = shuffled id
	s := New(n)
	inv := make([]int, n)
	for old, id := range perm {
		inv[id] = old
	}
	for id := 0; id < n; id++ {
		s.MustAddTask(g.Name(inv[id]), g.Weight(inv[id]))
	}
	for old := 0; old < n; old++ {
		for _, succ := range g.Succ(old) {
			s.MustAddEdge(perm[old], perm[succ])
		}
	}
	return s, perm
}

func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	layered, err := LayeredRandom(RandomConfig{Tasks: 60, EdgeProb: 0.4, MaxLayerWidth: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fft, err := FFT(16, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"diamond":   Diamond(1, 5, 3, 2),
		"chain":     Chain(20, 0.25),
		"wavefront": Wavefront(6, 1.25),
		"fft":       fft,
		"pipeline":  Pipeline(5, 4, 0.5),
		"layered":   layered,
	}
}

func TestFrozenMatchesNaiveKernel(t *testing.T) {
	for name, g := range testGraphs(t) {
		f, err := Freeze(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := f.Makespan(), naiveMakespan(g, g.Weights()); got != want {
			t.Fatalf("%s: frozen makespan %v != naive %v", name, got, want)
		}
		// Perturbed weights through the PathEvaluator path.
		pe := NewPathEvaluatorFrozen(f)
		rng := rand.New(rand.NewSource(3))
		w := g.Weights()
		for trial := 0; trial < 25; trial++ {
			for i := range w {
				w[i] = g.Weight(i) * (1 + rng.Float64())
			}
			if got, want := pe.MakespanWith(w), naiveMakespan(g, w); got != want {
				t.Fatalf("%s trial %d: frozen %v != naive %v", name, trial, got, want)
			}
		}
	}
}

func TestFrozenNonIdentityOrder(t *testing.T) {
	for name, g := range testGraphs(t) {
		s, perm := shuffledCopy(t, g, 11)
		f, err := Freeze(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := f.Makespan(), naiveMakespan(s, s.Weights()); got != want {
			t.Fatalf("%s shuffled: frozen %v != naive %v", name, got, want)
		}
		// Heads/Tails must come back in task-ID order regardless of the
		// permutation: compare against the unshuffled graph via perm.
		peO, err := NewPathEvaluator(g)
		if err != nil {
			t.Fatal(err)
		}
		peS := NewPathEvaluatorFrozen(f)
		headsO, headsS := peO.Heads(), peS.Heads()
		tailsO, tailsS := peO.Tails(), peS.Tails()
		for old := 0; old < g.NumTasks(); old++ {
			if headsO[old] != headsS[perm[old]] {
				t.Fatalf("%s: head(%d) %v != shuffled head %v", name, old, headsO[old], headsS[perm[old]])
			}
			if tailsO[old] != tailsS[perm[old]] {
				t.Fatalf("%s: tail(%d) %v != shuffled tail %v", name, old, tailsO[old], tailsS[perm[old]])
			}
		}
	}
}

// AllPairsLongest permutes its matrix back to task-ID order on
// non-identity graphs; Dist must agree with LongestPathBetween.
func TestAllPairsLongestNonIdentityOrder(t *testing.T) {
	g := Wavefront(5, 1.5)
	s, _ := shuffledCopy(t, g, 19)
	apl, err := NewAllPairsLongest(s)
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumTasks()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want, err := LongestPathBetween(s, u, v)
			if err == ErrNoPath {
				if d := apl.Dist(u, v); !math.IsInf(d, -1) {
					t.Fatalf("Dist(%d,%d) = %v want -Inf", u, v, d)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := apl.Dist(u, v); got != want {
				t.Fatalf("Dist(%d,%d) = %v want %v", u, v, got, want)
			}
		}
	}
}

func TestFrozenGatherScatterRoundTrip(t *testing.T) {
	g := Wavefront(5, 1)
	s, _ := shuffledCopy(t, g, 5)
	f, err := Freeze(s)
	if err != nil {
		t.Fatal(err)
	}
	n := f.NumTasks()
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	topo := f.Gather(make([]float64, n), src)
	back := f.Scatter(make([]float64, n), topo)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("roundtrip[%d] = %v want %v", i, back[i], src[i])
		}
	}
	for k := 0; k < n; k++ {
		if topo[k] != src[f.TaskID(k)] {
			t.Fatalf("gather[%d] = %v want src[%d]", k, topo[k], f.TaskID(k))
		}
		if f.Pos(f.TaskID(k)) != k {
			t.Fatalf("pos/order mismatch at %d", k)
		}
	}
}

func TestFrozenAdjacencyMirrorsGraph(t *testing.T) {
	for name, g := range testGraphs(t) {
		f, err := Freeze(g)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < f.NumTasks(); k++ {
			id := f.TaskID(k)
			preds := f.PredTopo(k)
			if len(preds) != g.InDegree(id) || f.InDegreeTopo(k) != g.InDegree(id) {
				t.Fatalf("%s: indegree mismatch at %d", name, id)
			}
			for j, p := range preds {
				if int(p) >= k {
					t.Fatalf("%s: predecessor position %d not before %d", name, p, k)
				}
				if f.TaskID(int(p)) != g.Pred(id)[j] {
					t.Fatalf("%s: pred order not preserved at task %d", name, id)
				}
			}
			succs := f.SuccTopo(k)
			if len(succs) != g.OutDegree(id) {
				t.Fatalf("%s: outdegree mismatch at %d", name, id)
			}
			for j, s := range succs {
				if int(s) <= k {
					t.Fatalf("%s: successor position %d not after %d", name, s, k)
				}
				if f.TaskID(int(s)) != g.Succ(id)[j] {
					t.Fatalf("%s: succ order not preserved at task %d", name, id)
				}
			}
		}
	}
}

func TestFrozenStaleness(t *testing.T) {
	g := Chain(3)
	f, err := Freeze(g)
	if err != nil {
		t.Fatal(err)
	}
	if !f.UpToDate() {
		t.Fatal("fresh snapshot reported stale")
	}
	d := f.Makespan()
	if err := g.SetWeight(0, 10); err != nil {
		t.Fatal(err)
	}
	if f.UpToDate() {
		t.Fatal("snapshot not invalidated by SetWeight")
	}
	if f.Makespan() != d {
		t.Fatal("stale snapshot changed its answer")
	}
	f2, err := Freeze(g)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Makespan() == d {
		t.Fatal("refreeze did not pick up the new weight")
	}
	g2 := Chain(2)
	f3, _ := Freeze(g2)
	g2.MustAddTask("x", 1)
	if f3.UpToDate() {
		t.Fatal("snapshot not invalidated by AddTask")
	}
	g3 := Chain(2)
	f4, _ := Freeze(g3)
	x := g3.MustAddTask("x", 1)
	g3.MustAddEdge(1, x)
	if f4.UpToDate() {
		t.Fatal("snapshot not invalidated by AddEdge")
	}
}

func TestFrozenRejectsCycle(t *testing.T) {
	g := New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := Freeze(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

// Dense construction: the per-node duplicate set must keep AddEdge O(1) on
// dense nodes and still reject duplicates and report HasEdge correctly.
func TestAddEdgeDenseDuplicates(t *testing.T) {
	const n = dupMapThreshold * 4
	g := New(n + 1)
	hub := g.MustAddTask("hub", 1)
	for i := 0; i < n; i++ {
		g.MustAddTask("t", 1)
	}
	for i := 1; i <= n; i++ {
		g.MustAddEdge(hub, i)
	}
	for i := 1; i <= n; i++ {
		if err := g.AddEdge(hub, i); err == nil {
			t.Fatalf("duplicate (0,%d) accepted", i)
		}
		if !g.HasEdge(hub, i) {
			t.Fatalf("HasEdge(0,%d) false", i)
		}
	}
	if g.HasEdge(hub, 0) || g.HasEdge(1, 2) {
		t.Fatal("phantom edge reported")
	}
	if g.NumEdges() != n {
		t.Fatalf("edges = %d want %d", g.NumEdges(), n)
	}
	// Clone drops the sets; further construction must still deduplicate.
	c := g.Clone()
	if err := c.AddEdge(hub, 1); err == nil {
		t.Fatal("clone accepted duplicate")
	}
	c.MustAddTask("extra", 1)
	c.MustAddEdge(hub, n+1)
	if err := c.AddEdge(hub, n+1); err == nil {
		t.Fatal("clone accepted duplicate after growth")
	}
}

// Regression: CriticalPath must tolerate accumulated float rounding when
// matching completion times. With weights like 0.1/0.2 the subtraction
// comp[v]−a_v does not reproduce the predecessor completion bit for bit,
// which the old exact-equality walk missed.
func TestCriticalPathAccumulatedRounding(t *testing.T) {
	g := New(8)
	// A chain of ten 0.1-weight tasks in parallel with coarser tasks whose
	// sums hit the classic 0.1+0.2 ≠ 0.3 representation gaps.
	prev := g.MustAddTask("c0", 0.1)
	first := prev
	for i := 1; i < 10; i++ {
		cur := g.MustAddTask("c", 0.1)
		g.MustAddEdge(prev, cur)
		prev = cur
	}
	a := g.MustAddTask("a", 0.2)
	b := g.MustAddTask("b", 0.3)
	end := g.MustAddTask("end", 0.3)
	g.MustAddEdge(first, a)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, end)
	g.MustAddEdge(prev, end)

	pe, err := NewPathEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	path, d := pe.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// The path must be a real graph path starting at a source and ending
	// at a sink, and its weight sum must reach the makespan within eps.
	if g.InDegree(path[0]) != 0 {
		t.Fatalf("path starts mid-graph at %d", path[0])
	}
	if g.OutDegree(path[len(path)-1]) != 0 {
		t.Fatalf("path ends mid-graph at %d", path[len(path)-1])
	}
	sum := 0.0
	for i, v := range path {
		sum += g.Weight(v)
		if i > 0 && !g.HasEdge(path[i-1], v) {
			t.Fatalf("no edge %d->%d on returned path", path[i-1], v)
		}
	}
	if math.Abs(sum-d) > pathEps(d) {
		t.Fatalf("path sum %v != makespan %v", sum, d)
	}
}
