package service

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/httpx"
	"repro/internal/linalg"
)

// This file is the in-tree end-to-end parity suite: it builds the real
// cmd/makespand, cmd/makespan and cmd/experiments binaries, drives the
// daemon over HTTP and diffs its responses byte for byte against the CLI
// output for the same inputs, after zeroing wall-clock fields. The CI
// smoke job (scripts/e2e_smoke.sh) exercises the same case table with
// curl; docs/E2E.md documents it.

var (
	e2eOnce sync.Once
	e2eDir  string
	e2eErr  error
)

// buildBinaries compiles the three binaries once per test process.
func buildBinaries(t *testing.T) string {
	t.Helper()
	e2eOnce.Do(func() {
		dir, err := os.MkdirTemp("", "makespand-e2e-*")
		if err != nil {
			e2eErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"./cmd/makespand", "./cmd/makespan", "./cmd/experiments", "./cmd/schedsim")
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			e2eErr = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		e2eDir = dir
	})
	if e2eErr != nil {
		t.Skipf("cannot build binaries: %v", e2eErr)
	}
	return e2eDir
}

// daemon is one running makespand process under test.
type daemon struct {
	base   string // http://host:port
	cmd    *exec.Cmd
	waitc  chan error // closed result of cmd.Wait (buffered 1)
	stderr *bytes.Buffer
	mu     *sync.Mutex // guards stderr
}

// stderrTail returns what the daemon has written so far (for failure
// dumps).
func (d *daemon) stderrTail() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// startDaemonProc launches makespand on a free port and returns once
// /healthz answers. It fails fast — with the daemon's stderr — when the
// process dies during startup instead of sitting out the full deadline,
// and never uses a fixed sleep: readiness is the scraped listening line
// plus a retrying probe with a hard deadline.
func startDaemonProc(t *testing.T, bin string, env []string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extraArgs...)
	cmd := exec.Command(filepath.Join(bin, "makespand"), args...)
	cmd.Env = append(os.Environ(), env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, waitc: make(chan error, 1), stderr: &bytes.Buffer{}, mu: &sync.Mutex{}}

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		lines := bufio.NewScanner(stderr)
		for lines.Scan() {
			line := lines.Text()
			d.mu.Lock()
			d.stderr.WriteString(line)
			d.stderr.WriteByte('\n')
			d.mu.Unlock()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
		// Pipe EOF: the process is exiting; reap it exactly once.
		d.waitc <- cmd.Wait()
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		select {
		case <-d.waitc:
		case <-time.After(10 * time.Second):
		}
	})

	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case err := <-d.waitc:
		t.Fatalf("makespand died during startup (%v); stderr:\n%s", err, d.stderrTail())
	case <-time.After(30 * time.Second):
		t.Fatalf("makespand did not report a listening address; stderr:\n%s", d.stderrTail())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpx.WaitReady(ctx, d.base+"/healthz", nil); err != nil {
		t.Fatalf("makespand never became ready (%v); stderr:\n%s", err, d.stderrTail())
	}
	return d
}

// startDaemon is the plain-URL variant for tests that only speak HTTP.
func startDaemon(t *testing.T, bin string, extraArgs ...string) string {
	t.Helper()
	return startDaemonProc(t, bin, nil, extraArgs...).base
}

func httpPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func runCLI(t *testing.T, bin, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), args...)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = io.Discard
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return out.String()
}

// The headline acceptance criterion: service responses byte-identical to
// the CLIs for the same graph/method/seed (timing fields normalized).
func TestE2EServiceMatchesCLIs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildBinaries(t)
	base := startDaemon(t, bin)

	t.Run("estimate", func(t *testing.T) {
		svc := httpPost(t, base+"/v1/estimate",
			`{"kind":"lu","k":8,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"bounds":true,"quantiles":[0.5,0.95]}`)
		cli := runCLI(t, bin, "makespan", "-kind", "lu", "-k", "8", "-pfail", "0.001",
			"-methods", "paper", "-trials", "2000", "-seed", "7", "-bounds",
			"-quantiles", "0.5,0.95", "-format", "json")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("estimate differs from CLI:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
		// Warm repeat stays identical.
		warm := httpPost(t, base+"/v1/estimate",
			`{"kind":"lu","k":8,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"bounds":true,"quantiles":[0.5,0.95]}`)
		if normalizeTimes(warm) != normalizeTimes(svc) {
			t.Error("warm estimate differs from cold")
		}
	})

	t.Run("estimate-all-methods-lambda", func(t *testing.T) {
		svc := httpPost(t, base+"/v1/estimate",
			`{"kind":"qr","k":6,"lambda":0.002,"methods":"all","trials":1000,"seed":11}`)
		cli := runCLI(t, bin, "makespan", "-kind", "qr", "-k", "6", "-lambda", "0.002",
			"-methods", "all", "-trials", "1000", "-seed", "11", "-format", "json")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("lambda estimate differs:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
	})

	t.Run("sweep", func(t *testing.T) {
		svc := httpPost(t, base+"/v1/sweep", `{"trials":2000,"seed":7}`)
		cli := runCLI(t, bin, "experiments", "-sweep", "-format", "json", "-trials", "2000", "-seed", "7")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("sweep differs from CLI:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
	})

	t.Run("sweep-custom-spec", func(t *testing.T) {
		svc := httpPost(t, base+"/v1/sweep",
			`{"kind":"cholesky","k":6,"pfails":[0.1,0.01,0.001],"trials":1500,"seed":3,"methods":"all"}`)
		cli := runCLI(t, bin, "experiments", "-sweep", "-sweep-kind", "cholesky", "-sweep-k", "6",
			"-sweep-pfails", "0.1,0.01,0.001", "-format", "json", "-trials", "1500", "-seed", "3", "-all-methods")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("custom sweep differs:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
	})

	t.Run("schedule", func(t *testing.T) {
		req := `{"kind":"lu","k":8,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}`
		svc := httpPost(t, base+"/v1/schedule", req)
		cli := runCLI(t, bin, "schedsim", "-kind", "lu", "-k", "8", "-procs", "4", "-pfail", "0.01",
			"-trials", "2000", "-seed", "7", "-quantiles", "0.5,0.99", "-format", "json")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("schedule differs from CLI:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
		// Warm repeat (cached frozen schedule) stays identical.
		warm := httpPost(t, base+"/v1/schedule", req)
		if normalizeTimes(warm) != normalizeTimes(svc) {
			t.Error("warm schedule differs from cold")
		}
	})

	t.Run("schedule-single-policy-lambda", func(t *testing.T) {
		svc := httpPost(t, base+"/v1/schedule",
			`{"kind":"qr","k":6,"procs":8,"lambda":0.003,"policies":"fo","trials":1000,"seed":11}`)
		cli := runCLI(t, bin, "schedsim", "-kind", "qr", "-k", "6", "-procs", "8", "-lambda", "0.003",
			"-policies", "fo", "-trials", "1000", "-seed", "11", "-format", "json")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("schedule (fo, λ) differs from CLI:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
	})

	t.Run("submitted-graph-file", func(t *testing.T) {
		// A DAG submitted as raw JSON must estimate exactly like
		// `makespan -graph file.json`.
		g, err := linalg.Generate(linalg.FactCholesky, 5, linalg.KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "g.json")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := dag.WriteJSON(f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sub := httpPost(t, base+"/v1/graphs", fmt.Sprintf(`{"graph":%s}`, raw))
		idRe := regexp.MustCompile(`"id": "([^"]+)"`)
		m := idRe.FindStringSubmatch(sub)
		if m == nil {
			t.Fatalf("no id in %s", sub)
		}
		svc := httpPost(t, base+"/v1/estimate",
			fmt.Sprintf(`{"graph_id":%q,"pfail":0.01,"methods":"paper","trials":1000,"seed":5}`, m[1]))
		cli := runCLI(t, bin, "makespan", "-graph", path, "-pfail", "0.01",
			"-methods", "paper", "-trials", "1000", "-seed", "5", "-format", "json")
		if normalizeTimes(svc) != normalizeTimes(cli) {
			t.Errorf("file-graph estimate differs:\nservice:\n%s\ncli:\n%s", svc, cli)
		}
	})
}

// SIGTERM drains a real makespand process: /healthz flips to 503 during
// the grace window, the request that was mid-kernel when the signal
// arrived still completes with a full 200 document, and the process
// exits 0.
func TestE2EDrainOnSigterm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildBinaries(t)
	// The chunk delay keeps the in-flight estimate slow enough to
	// straddle the signal on any machine; the grace window keeps the
	// listener open long enough to observe the draining health state.
	d := startDaemonProc(t, bin, []string{"MAKESPAND_FAULTS=mc.chunk=delay:20ms"},
		"-drain-grace", "500ms", "-drain-timeout", "30s")

	done := make(chan string, 1)
	go func() {
		resp, err := http.Post(d.base+"/v1/estimate", "application/json",
			strings.NewReader(`{"kind":"lu","k":6,"pfail":0.05,"methods":"First Order","trials":40960}`))
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- fmt.Sprintf("%d %s", resp.StatusCode, b)
	}()

	// Wait until the request is inside the handler stack, then signal.
	waitInFlight := func() bool {
		resp, err := http.Get(d.base + "/v1/cache")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return strings.Contains(string(b), `"in_flight": 2`) // the estimate + this probe
	}
	deadline := time.Now().Add(15 * time.Second)
	for !waitInFlight() {
		if time.Now().After(deadline) {
			t.Fatalf("estimate never showed up in flight; stderr:\n%s", d.stderrTail())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the grace window the health probe must advertise draining.
	saw503 := false
	for probeDeadline := time.Now().Add(5 * time.Second); time.Now().Before(probeDeadline); {
		resp, err := http.Get(d.base + "/healthz")
		if err != nil {
			break // listener closed: grace window over
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !saw503 {
		t.Errorf("healthz never answered 503 during the drain grace window; stderr:\n%s", d.stderrTail())
	}

	// The in-flight estimate survives the drain with a complete document.
	select {
	case res := <-done:
		if !strings.HasPrefix(res, "200 ") || !strings.Contains(res, `"monte_carlo"`) {
			t.Fatalf("in-flight request during drain: %s\nstderr:\n%s", res, d.stderrTail())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("in-flight request never completed; stderr:\n%s", d.stderrTail())
	}

	// And the process exits 0 — a drain is not a crash.
	select {
	case err := <-d.waitc:
		if err != nil {
			t.Fatalf("daemon exit after drain: %v; stderr:\n%s", err, d.stderrTail())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM; stderr:\n%s", d.stderrTail())
	}
	if !strings.Contains(d.stderrTail(), "drained, exiting") {
		t.Errorf("drain log line missing; stderr:\n%s", d.stderrTail())
	}
}
