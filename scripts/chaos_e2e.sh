#!/usr/bin/env sh
# chaos_e2e.sh — fault-injection e2e matrix for the makespand service.
# Each scenario starts a real daemon with a MAKESPAND_FAULTS spec
# (internal/faultinject), drives the same request set as the fault-free
# baseline, and requires every 2xx response to be byte-identical to the
# baseline after timing fields are zeroed: injected build failures,
# latency, eviction storms and a mid-load SIGTERM may cost retries or
# latency but may never change an answer. Every daemon must drain and
# exit 0 on SIGTERM, and an injected build failure must not be served
# from the cache afterwards (the retry must succeed with the baseline
# bytes).
#
# Scenarios:
#   S1 baseline      no faults; responses recorded as the reference
#   S2 build failure artifact.build.plan=error (single-shot): first
#                    estimate answers 5xx, the retry is byte-identical
#   S3 latency       mc.chunk=delay:2ms on every chunk
#   S4 evict storm   artifact.evict=trigger: a full cache shed after
#                    every resolution, cold paths everywhere
#   S5 kill mid-load SIGTERM with an estimate mid-kernel: the in-flight
#                    request completes byte-identically, exit code 0
#   S6 cluster kill  three replicas behind makespan-lb; SIGTERM one
#                    replica under load: zero non-2xx at the front and
#                    every body byte-identical to the baseline while the
#                    dead replica's shard remaps
#
# Usage: scripts/chaos_e2e.sh [base_port]   (default 17521; S6 uses
#        base_port+5..base_port+8)
set -eu

cd "$(dirname "$0")/.."
base_port="${1:-17521}"
bin="$(mktemp -d)"
work="$(mktemp -d)"
pid=""
pids=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$bin" "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand ./cmd/makespan-lb

normalize() {
    sed -E 's/"(mc_time_seconds|time_seconds|uptime_seconds)": [-+0-9.eE]+/"\1": 0/'
}

# start_daemon <port> <faults-spec> [extra args...]: launch makespand,
# wait for readiness, fail fast with the log if the process dies.
start_daemon() {
    sd_port="$1"
    sd_faults="$2"
    shift 2
    base="http://127.0.0.1:$sd_port"
    MAKESPAND_FAULTS="$sd_faults" "$bin/makespand" -addr "127.0.0.1:$sd_port" -workers 2 \
        -drain-grace 500ms -drain-timeout 30s "$@" 2>"$work/daemon.log" &
    pid=$!
    i=0
    until curl -fsS --max-time 2 "$base/healthz" >/dev/null 2>&1; do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "makespand died during startup; log:" >&2
            cat "$work/daemon.log" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -ge 300 ]; then
            echo "makespand did not come up within 30s; log:" >&2
            cat "$work/daemon.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# stop_daemon: SIGTERM, then require a clean (exit 0) drain.
stop_daemon() {
    kill -TERM "$pid" 2>/dev/null || true
    set +e
    wait "$pid"
    status=$?
    set -e
    pid=""
    if [ "$status" -ne 0 ]; then
        echo "makespand exited $status after SIGTERM (want 0); log:" >&2
        cat "$work/daemon.log" >&2
        exit 1
    fi
    if ! grep -q "drained, exiting" "$work/daemon.log"; then
        echo "makespand exited without draining; log:" >&2
        cat "$work/daemon.log" >&2
        exit 1
    fi
}

# The deterministic request set. R5 doubles as the mid-load victim in S5.
r1='{"kind":"lu","k":8,"pfail":0.001,"methods":"paper","trials":2000,"seed":7}'
r2='{"kind":"lu","k":8,"pfail":0.01,"methods":"all","trials":3000,"seed":11,"bounds":true,"quantiles":[0.5,0.95]}'
r3='{"kind":"lu","k":8,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}'
r4='{"kind":"lu","k":6,"pfails":[0.1,0.01],"trials":1500,"seed":3}'
r5='{"kind":"lu","k":6,"pfail":0.05,"methods":"First Order","trials":40960,"seed":9}'

# run_set <dir>: drive R1..R5 and store normalized responses.
run_set() {
    dir="$1"
    mkdir -p "$dir"
    curl -fsS -X POST "$base/v1/estimate" -d "$r1" | normalize >"$dir/r1.json"
    curl -fsS -X POST "$base/v1/estimate" -d "$r2" | normalize >"$dir/r2.json"
    curl -fsS -X POST "$base/v1/schedule" -d "$r3" | normalize >"$dir/r3.json"
    curl -fsS -X POST "$base/v1/sweep" -d "$r4" | normalize >"$dir/r4.json"
    curl -fsS -X POST "$base/v1/estimate" -d "$r5" | normalize >"$dir/r5.json"
}

# diff_set <dir>: every response must match the baseline byte for byte.
diff_set() {
    for f in r1 r2 r3 r4 r5; do
        diff -u "$work/baseline/$f.json" "$1/$f.json"
    done
}

echo "== S1 baseline (fault-free)"
start_daemon "$base_port" ""
run_set "$work/baseline"
stop_daemon

echo "== S2 injected build failure (artifact.build.plan, single-shot)"
start_daemon $((base_port + 1)) "artifact.build.plan=error:injected chaos fault*1"
# The first Dodin-bearing estimate trips the failpoint: a server-side
# 5xx, not a silent wrong answer and not a client-blaming 4xx.
code="$(curl -s -o "$work/s2_fail.json" -w '%{http_code}' -X POST "$base/v1/estimate" -d "$r1")"
case "$code" in 5??) ;; *)
    echo "injected build failure answered $code (want 5xx): $(cat "$work/s2_fail.json")" >&2
    exit 1
    ;;
esac
grep -q "injected chaos fault" "$work/s2_fail.json"
# The failure was not cached: the full set now runs to baseline bytes.
run_set "$work/s2"
diff_set "$work/s2"
stop_daemon

echo "== S3 injected latency on every MC chunk"
start_daemon $((base_port + 2)) "mc.chunk=delay:2ms"
run_set "$work/s3"
diff_set "$work/s3"
stop_daemon

echo "== S4 eviction storm after every resolution"
start_daemon $((base_port + 3)) "artifact.evict=trigger"
run_set "$work/s4"
diff_set "$work/s4"
# Warm-path rerun under the storm: every artifact rebuilt, same bytes.
run_set "$work/s4_warm"
diff_set "$work/s4_warm"
stop_daemon

echo "== S5 SIGTERM mid-load"
start_daemon $((base_port + 4)) "mc.chunk=delay:20ms"
# Fire the slow estimate, wait until it is inside the handler stack,
# then signal. The drain must let it finish with baseline bytes.
curl -fsS -X POST "$base/v1/estimate" -d "$r5" >"$work/s5_raw.json" &
curl_pid=$!
i=0
until curl -fsS --max-time 2 "$base/v1/cache" 2>/dev/null | grep -q '"in_flight": 2'; do
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "estimate never showed up in flight; log:" >&2
        cat "$work/daemon.log" >&2
        exit 1
    fi
    sleep 0.05
done
kill -TERM "$pid"
# During the grace window the health probe must advertise draining.
saw503=0
i=0
while [ "$i" -lt 100 ]; do
    hc="$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 "$base/healthz" 2>/dev/null || true)"
    if [ "$hc" = "503" ]; then
        saw503=1
        break
    fi
    [ "$hc" = "000" ] && break # listener closed: grace window over
    i=$((i + 1))
    sleep 0.01
done
if [ "$saw503" -ne 1 ]; then
    echo "healthz never advertised draining after SIGTERM; log:" >&2
    cat "$work/daemon.log" >&2
    exit 1
fi
if ! wait "$curl_pid"; then
    echo "in-flight estimate failed during drain; log:" >&2
    cat "$work/daemon.log" >&2
    exit 1
fi
normalize <"$work/s5_raw.json" >"$work/s5.json"
diff -u "$work/baseline/r5.json" "$work/s5.json"
set +e
wait "$pid"
status=$?
set -e
pid=""
if [ "$status" -ne 0 ]; then
    echo "makespand exited $status after mid-load SIGTERM (want 0); log:" >&2
    cat "$work/daemon.log" >&2
    exit 1
fi
grep -q "drained, exiting" "$work/daemon.log"

echo "== S6 cluster: SIGTERM one replica under load"
# Three slowed replicas behind the lb. The chunk delay keeps kernels
# busy long enough that the SIGTERM lands with work in flight; the
# front must absorb the loss — failover for requests already headed to
# the dying replica, ring eject plus shard remap for everything after —
# with zero non-2xx and baseline bytes throughout.
replicas=""
victim_pid=""
for i in 1 2 3; do
    rport=$((base_port + 4 + i))
    MAKESPAND_FAULTS="mc.chunk=delay:5ms" "$bin/makespand" \
        -addr "127.0.0.1:$rport" -workers 2 \
        -drain-grace 500ms -drain-timeout 30s 2>"$work/s6_replica$i.log" &
    pids="$pids $!"
    [ "$i" -eq 1 ] && victim_pid=$!
    replicas="$replicas,http://127.0.0.1:$rport"
done
replicas="${replicas#,}"
front="http://127.0.0.1:$((base_port + 8))"
"$bin/makespan-lb" -addr "127.0.0.1:$((base_port + 8))" \
    -replicas "$replicas" -check-interval 100ms 2>"$work/s6_lb.log" &
pids="$pids $!"
i=0
until curl -fsS --max-time 2 "$front/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "makespan-lb did not come up within 30s; log:" >&2
        cat "$work/s6_lb.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Keep a slow estimate in flight across the kill, then drive the full
# set repeatedly while the replica dies and its shard remaps. Every
# curl uses -f: any non-2xx at the front fails the scenario.
base="$front"
curl -fsS -X POST "$front/v1/estimate" -d "$r5" >"$work/s6_inflight_raw.json" &
inflight_pid=$!
sleep 0.2
kill -TERM "$victim_pid"
for round in 1 2 3; do
    run_set "$work/s6_round$round"
    diff_set "$work/s6_round$round"
done
if ! wait "$inflight_pid"; then
    echo "in-flight estimate failed across the replica kill; lb log:" >&2
    cat "$work/s6_lb.log" >&2
    exit 1
fi
normalize <"$work/s6_inflight_raw.json" >"$work/s6_inflight.json"
diff -u "$work/baseline/r5.json" "$work/s6_inflight.json"
set +e
wait "$victim_pid"
status=$?
set -e
pids="$(echo "$pids" | sed "s/ $victim_pid//")"
if [ "$status" -ne 0 ]; then
    echo "replica 1 exited $status after SIGTERM under load (want 0); log:" >&2
    cat "$work/s6_replica1.log" >&2
    exit 1
fi
grep -q "drained, exiting" "$work/s6_replica1.log"
# The ring settles at two replicas and the front stays healthy.
i=0
until curl -fsS "$front/v1/replicas" | grep -q '"ring_size": 2'; do
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "lb never ejected the killed replica; log:" >&2
        cat "$work/s6_lb.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "$front/healthz" >/dev/null

echo "chaos e2e: all scenarios passed"
