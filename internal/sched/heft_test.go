package sched

import (
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
)

func TestPlatformValidate(t *testing.T) {
	if err := (Platform{}).Validate(); err == nil {
		t.Error("empty platform accepted")
	}
	if err := (Platform{Speeds: []float64{1, 0}}).Validate(); err == nil {
		t.Error("zero speed accepted")
	}
	if err := (Platform{Speeds: []float64{1}, Comm: -1}).Validate(); err == nil {
		t.Error("negative comm accepted")
	}
	if err := Uniform(3).Validate(); err != nil {
		t.Errorf("uniform platform rejected: %v", err)
	}
}

func TestUpwardRanksChain(t *testing.T) {
	// Unit-speed single processor, no comm: rank is the tail length.
	g := dag.Chain(4, 1, 2, 3, 4)
	r, err := UpwardRanks(g, Uniform(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 9, 7, 4}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("rank[%d] = %v want %v", i, r[i], want[i])
		}
	}
}

func TestUpwardRanksWithComm(t *testing.T) {
	g := dag.Chain(3, 1)
	plat := Platform{Speeds: []float64{1}, Comm: 0.5}
	r, _ := UpwardRanks(g, plat, nil)
	// rank(last)=1, rank(mid)=1+0.5+1=2.5, rank(first)=1+0.5+2.5=4.
	want := []float64{4, 2.5, 1}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("rank[%d] = %v want %v", i, r[i], want[i])
		}
	}
}

func TestUpwardRanksErrors(t *testing.T) {
	g := dag.Chain(3)
	if _, err := UpwardRanks(g, Platform{}, nil); err == nil {
		t.Error("bad platform accepted")
	}
	if _, err := UpwardRanks(g, Uniform(1), []float64{1}); err == nil {
		t.Error("short weights accepted")
	}
}

func TestHEFTSingleUnitProcessorMatchesListSchedule(t *testing.T) {
	g, _ := linalg.Cholesky(4, linalg.KernelTimes{})
	s, err := HEFT(g, Uniform(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-g.TotalWeight()) > 1e-9 {
		t.Fatalf("1-proc HEFT %v != total %v", s.Makespan, g.TotalWeight())
	}
}

func TestHEFTUnlimitedIdenticalIsCriticalPath(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	s, err := HEFT(g, Uniform(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := dag.Makespan(g)
	if math.Abs(s.Makespan-d) > 1e-12 {
		t.Fatalf("HEFT %v != d(G) %v", s.Makespan, d)
	}
}

func TestHEFTPrefersFastProcessor(t *testing.T) {
	// One task, two processors, the second twice as fast.
	g := dag.New(1)
	g.MustAddTask("t", 4)
	s, err := HEFT(g, Platform{Speeds: []float64{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc[0] != 1 || s.Makespan != 2 {
		t.Fatalf("HEFT chose proc %d, makespan %v", s.Proc[0], s.Makespan)
	}
}

func TestHEFTCommMakesColocationWin(t *testing.T) {
	// Chain of two tasks; comm so high that moving to a second faster
	// processor loses.
	g := dag.Chain(2, 2, 2)
	plat := Platform{Speeds: []float64{1, 1.25}, Comm: 10}
	s, err := HEFT(g, plat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc[0] != s.Proc[1] {
		t.Fatalf("HEFT split a chain across procs with comm=10: %v", s.Proc)
	}
}

func TestHEFTInsertionPolicyFillsGap(t *testing.T) {
	// Processor timeline with a gap: fork of one long and one short task
	// followed by a dependent of the long one; the short task should slot
	// next to the others without delaying them.
	g := dag.New(0)
	src := g.MustAddTask("src", 1)
	long := g.MustAddTask("long", 10)
	short := g.MustAddTask("short", 1)
	dep := g.MustAddTask("dep", 1)
	g.MustAddEdge(src, long)
	g.MustAddEdge(src, short)
	g.MustAddEdge(long, dep)
	s, err := HEFT(g, Uniform(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := dag.Makespan(g)
	if math.Abs(s.Makespan-d) > 1e-12 {
		t.Fatalf("HEFT %v != critical path %v", s.Makespan, d)
	}
}

func TestHEFTRespectsPrecedenceAndComm(t *testing.T) {
	rng := mrand.New(mrand.NewSource(3))
	g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 40, EdgeProb: 0.3, MaxLayerWidth: 6}, rng)
	plat := Platform{Speeds: []float64{1, 2, 0.5}, Comm: 0.1}
	s, err := HEFT(g, plat, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Succ(u) {
			arr := s.Finish[u]
			if s.Proc[u] != s.Proc[v] {
				arr += plat.Comm
			}
			if s.Start[v] < arr-1e-9 {
				t.Fatalf("task %d starts %v before data from %d arrives %v", v, s.Start[v], u, arr)
			}
		}
	}
	// No overlap per processor.
	type iv struct{ s, f float64 }
	byProc := map[int][]iv{}
	for i := 0; i < g.NumTasks(); i++ {
		byProc[s.Proc[i]] = append(byProc[s.Proc[i]], iv{s.Start[i], s.Finish[i]})
	}
	for p, ivs := range byProc {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.s < b.f-1e-9 && b.s < a.f-1e-9 {
					t.Fatalf("proc %d: overlap [%v,%v] [%v,%v]", p, a.s, a.f, b.s, b.f)
				}
			}
		}
	}
}

// Property: HEFT on identical processors never exceeds the serial time and
// never beats the critical path; more processors never hurt... (HEFT is a
// heuristic, so only the bounds are guaranteed).
func TestQuickHEFTBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 25, EdgeProb: 0.4, MaxLayerWidth: 5}, rng)
		if err != nil {
			return false
		}
		d, _ := dag.Makespan(g)
		for _, np := range []int{1, 3, 8} {
			s, err := HEFT(g, Uniform(np), nil)
			if err != nil {
				return false
			}
			if s.Makespan < d-1e-9 || s.Makespan > g.TotalWeight()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFailureAwareHEFTUsesInflatedWeights(t *testing.T) {
	g, _ := linalg.LU(5, linalg.KernelTimes{})
	m := failure.Model{Lambda: 0.5}
	w := FailureAwareWeights(g, m)
	for i := range w {
		if w[i] < g.Weight(i) {
			t.Fatalf("inflated weight %v below base %v", w[i], g.Weight(i))
		}
	}
	plain, err := HEFT(g, Uniform(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := HEFT(g, Uniform(3), w)
	if err != nil {
		t.Fatal(err)
	}
	// The failure-aware schedule plans for longer tasks.
	if aware.Makespan < plain.Makespan {
		t.Fatalf("aware plan %v shorter than plain %v", aware.Makespan, plain.Makespan)
	}
}

func TestHEFTRejectsCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := HEFT(g, Uniform(2), nil); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestHEFTWeightsLengthChecked(t *testing.T) {
	g := dag.Chain(3)
	if _, err := HEFT(g, Uniform(2), []float64{1}); err == nil {
		t.Fatal("short weights accepted")
	}
}
