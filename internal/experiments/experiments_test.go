package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
)

func TestFiguresSpecsMatchPaper(t *testing.T) {
	specs := Figures()
	if len(specs) != 9 {
		t.Fatalf("figures = %d want 9", len(specs))
	}
	if specs[0].ID != 4 || specs[8].ID != 12 {
		t.Fatalf("figure IDs wrong: %v..%v", specs[0].ID, specs[8].ID)
	}
	// Figure 4 is Cholesky pfail=0.01; Figure 9 is LU pfail=0.0001;
	// Figure 12 is QR pfail=0.0001 (paper layout).
	f4, _ := Figure(4)
	if f4.Fact != linalg.FactCholesky || f4.PFail != 0.01 {
		t.Fatalf("figure 4 = %+v", f4)
	}
	f9, _ := Figure(9)
	if f9.Fact != linalg.FactLU || f9.PFail != 0.0001 {
		t.Fatalf("figure 9 = %+v", f9)
	}
	f12, _ := Figure(12)
	if f12.Fact != linalg.FactQR || f12.PFail != 0.0001 {
		t.Fatalf("figure 12 = %+v", f12)
	}
	for _, s := range specs {
		if len(s.Ks) != 5 || s.Ks[0] != 4 || s.Ks[4] != 12 {
			t.Fatalf("figure %d sizes = %v", s.ID, s.Ks)
		}
	}
	if _, err := Figure(3); err == nil {
		t.Fatal("figure 3 accepted")
	}
	if _, err := Figure(13); err == nil {
		t.Fatal("figure 13 accepted")
	}
}

func TestTable1SpecMatchesPaper(t *testing.T) {
	s := Table1()
	if s.Fact != linalg.FactLU || s.K != 20 || s.PFail != 0.0001 {
		t.Fatalf("table 1 spec = %+v", s)
	}
	if n := linalg.LUTaskCount(s.K); n != 2870 {
		t.Fatalf("table 1 task count = %d want 2870", n)
	}
}

func TestCaption(t *testing.T) {
	f4, _ := Figure(4)
	if f4.Caption() != "Cholesky, pfail = 0.01" {
		t.Fatalf("caption = %q", f4.Caption())
	}
}

func TestEstimateUnknownMethod(t *testing.T) {
	g := dag.Chain(3)
	if _, _, err := Estimate("bogus", g, failure.Model{Lambda: 0.1}, 0); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestEstimateAllMethodsRun(t *testing.T) {
	g, _ := linalg.Cholesky(4, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	d, _ := dag.Makespan(g)
	for _, meth := range AllMethods() {
		est, dt, err := Estimate(meth, g, m, 0)
		if err != nil {
			t.Fatalf("%s: %v", meth, err)
		}
		if est < 0.5*d || est > 3*d {
			t.Fatalf("%s estimate %v implausible (d=%v)", meth, est, d)
		}
		if dt < 0 {
			t.Fatalf("%s negative duration", meth)
		}
	}
}

// Integration: a reduced-size figure run reproduces the paper's core
// finding — at pfail = 0.001, First Order has (much) lower error than
// Dodin, and all methods land within a few percent of the truth.
func TestRunFigureReducedReproducesOrdering(t *testing.T) {
	spec, _ := Figure(5) // Cholesky, pfail = 0.001
	var progress []string
	res, err := RunFigure(spec, Options{
		Trials:  40000,
		Seed:    1,
		Ks:      []int{4, 6},
		Methods: AllMethods(),
		Progress: func(s string) {
			progress = append(progress, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if len(progress) != 2 {
		t.Fatalf("progress lines = %d", len(progress))
	}
	for _, p := range res.Points {
		fo := math.Abs(p.RelErr[MethodFirstOrder])
		dodin := math.Abs(p.RelErr[MethodDodin])
		if fo > 0.02 {
			t.Errorf("k=%d: First Order error %v too large", p.K, fo)
		}
		if dodin < fo {
			t.Errorf("k=%d: Dodin (%v) beat First Order (%v) — contradicts the paper", p.K, dodin, fo)
		}
		if p.Tasks != linalg.CholeskyTaskCount(p.K) {
			t.Errorf("k=%d: task count %d", p.K, p.Tasks)
		}
		// First Order must run at least as fast as Dodin.
		if p.Time[MethodFirstOrder] > p.Time[MethodDodin] {
			t.Errorf("k=%d: First Order slower than Dodin", p.K)
		}
	}
}

func TestRunTable1Reduced(t *testing.T) {
	spec := Table1()
	spec.K = 6 // reduced for test speed; structure identical
	res, err := RunTable1(spec, Options{Trials: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Point.Tasks != linalg.LUTaskCount(6) {
		t.Fatalf("tasks = %d", res.Point.Tasks)
	}
	if math.Abs(res.Point.RelErr[MethodFirstOrder]) > 0.01 {
		t.Fatalf("First Order rel err %v at pfail=1e-4", res.Point.RelErr[MethodFirstOrder])
	}
}

func TestWriteFigureFormats(t *testing.T) {
	spec, _ := Figure(4)
	res, err := RunFigure(spec, Options{Trials: 2000, Seed: 3, Ks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Cholesky, pfail = 0.01", "First Order", "Dodin", "Normal"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteFigureCSV(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "figure,factorization,pfail,k,tasks,") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 1+3 { // header + 3 methods × 1 k
		t.Errorf("CSV lines = %d want 4:\n%s", lines, csv)
	}
}

func TestWriteTable1Format(t *testing.T) {
	spec := Table1()
	spec.K = 4
	res, err := RunTable1(spec, Options{Trials: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Normalized difference", "Execution time", "First Order"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPaperMethodsOrder(t *testing.T) {
	pm := PaperMethods()
	if len(pm) != 3 || pm[0] != MethodDodin || pm[2] != MethodFirstOrder {
		t.Fatalf("paper methods = %v", pm)
	}
	if len(AllMethods()) != 5 {
		t.Fatalf("all methods = %v", AllMethods())
	}
}
