package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	// a -> b -> c with the shortcut a -> c: the shortcut must go.
	g := New(3)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	c := g.MustAddTask("c", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.MustAddEdge(a, c)
	out, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() != 2 {
		t.Fatalf("edges = %d want 2", out.NumEdges())
	}
	if out.HasEdge(a, c) {
		t.Fatal("shortcut survived")
	}
	if !out.HasEdge(a, b) || !out.HasEdge(b, c) {
		t.Fatal("chain edges removed")
	}
}

func TestTransitiveReductionKeepsIrredundant(t *testing.T) {
	g := Diamond(1, 2, 3, 4)
	out, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() != g.NumEdges() {
		t.Fatalf("diamond lost edges: %d vs %d", out.NumEdges(), g.NumEdges())
	}
}

func TestTransitiveReductionRejectsCycle(t *testing.T) {
	g := New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := TransitiveReduction(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

// Property: reduction preserves reachability and all longest-path
// quantities, and never adds edges.
func TestQuickTransitiveReductionPreservesPaths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyiDAG(RandomConfig{Tasks: 20, EdgeProb: 0.3}, rng)
		if err != nil {
			return false
		}
		out, err := TransitiveReduction(g)
		if err != nil {
			return false
		}
		if out.NumEdges() > g.NumEdges() {
			return false
		}
		r1, err := NewReachability(g)
		if err != nil {
			return false
		}
		r2, err := NewReachability(out)
		if err != nil {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			for v := 0; v < g.NumTasks(); v++ {
				if r1.Reach(u, v) != r2.Reach(u, v) {
					return false
				}
			}
		}
		d1, _ := Makespan(g)
		d2, _ := Makespan(out)
		if math.Abs(d1-d2) > 1e-9 {
			return false
		}
		tl1, _ := TopLevels(g)
		tl2, _ := TopLevels(out)
		for i := range tl1 {
			if math.Abs(tl1[i]-tl2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveReductionIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, _ := ErdosRenyiDAG(RandomConfig{Tasks: 25, EdgeProb: 0.4}, rng)
	once, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := TransitiveReduction(once)
	if err != nil {
		t.Fatal(err)
	}
	if once.NumEdges() != twice.NumEdges() {
		t.Fatalf("not idempotent: %d vs %d", once.NumEdges(), twice.NumEdges())
	}
}
