package core

import (
	"math"

	"repro/internal/dag"
	"repro/internal/failure"
)

// ExpectedBottomLevels returns, for every task i, a first-order
// approximation of the expected length of the longest path starting at i
// (inclusive of a_i) when tasks fail with rate λ — the failure-aware
// analogue of tail(i) = a_i + bl(i) that the paper's conclusion proposes
// to feed into CP/HEFT-style list scheduling.
//
// Applying the paper's identity to the sub-DAG hanging below i: doubling a
// downstream task j (reachable from i) turns tail(i) into
// max(tail(i), lp(i→j) + tail(j) − a_j + a_j), hence
//
// so the analogue of the paper's d(G_j) identity is
//
//	E[tail(i)] ≈ tail(i) + λ Σ_{j ⪰ i} a_j·max(0, lp(i→j) + tail(j) − tail(i))
//
// where lp(i→j) is the longest i→j path (inclusive). Cost O(V(V+E)) time
// and O(V²) memory via the all-pairs longest-path matrix.
func ExpectedBottomLevels(g *dag.Graph, model failure.Model) ([]float64, error) {
	f, err := dag.Freeze(g)
	if err != nil {
		return nil, err
	}
	pe := dag.NewPathEvaluatorFrozen(f)
	apl := dag.NewAllPairsLongestFrozen(f)
	tails := pe.Tails()
	n := g.NumTasks()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			lp := apl.Dist(i, j)
			if math.IsInf(lp, -1) {
				continue
			}
			// Longest path from i through j is lp + tail(j) − a_j;
			// doubling a_j raises it by a_j, so the excess over tail(i) is:
			delta := lp + tails[j] - tails[i]
			if delta > 0 {
				sum += g.Weight(j) * delta
			}
		}
		out[i] = tails[i] + model.Lambda*sum
	}
	return out, nil
}

// ExpectedTopLevels is the mirror image: a first-order approximation of
// the expected longest path ending at i (inclusive), the failure-aware
// earliest completion time of i with unlimited processors.
func ExpectedTopLevels(g *dag.Graph, model failure.Model) ([]float64, error) {
	f, err := dag.Freeze(g)
	if err != nil {
		return nil, err
	}
	pe := dag.NewPathEvaluatorFrozen(f)
	apl := dag.NewAllPairsLongestFrozen(f)
	heads := pe.Heads()
	n := g.NumTasks()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			lp := apl.Dist(j, i)
			if math.IsInf(lp, -1) {
				continue
			}
			// Longest path ending at i through j is lp + head(j) − a_j;
			// doubling a_j raises it by a_j.
			delta := lp + heads[j] - heads[i]
			if delta > 0 {
				sum += g.Weight(j) * delta
			}
		}
		out[i] = heads[i] + model.Lambda*sum
	}
	return out, nil
}
