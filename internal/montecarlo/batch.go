package montecarlo

import "unsafe"

// Phase 2 of the split trial pipeline: multi-failure trials deferred by
// phase 1 are evaluated in lane blocks — a structure-of-arrays longest-path
// sweep over the frozen CSR graph computing evalLanes trials per pass.
// Node-major order loads each node's predecessor indices once per block
// instead of once per trial, and turns the inner max/add recurrence into
// flat sweeps over contiguous per-node lane rows.
//
// Bit-exactness with the scalar kernel: for every (node, lane) the value
// written is start + weight with the same two operands the scalar path
// uses — the max over predecessor rows equals the scalar max (same
// comparison chain over the same values), failed lanes get start + failW
// computed directly from the start value (never by adding a correction to
// an already-summed base), and the running per-lane maximum performs the
// same comparisons in the same node order.

// evalLanes is the lane block width B: trials evaluated per CSR pass.
// 32 lanes = one 256-byte row per node, large enough to amortize the
// predecessor index loads and small enough that the whole comp matrix of a
// few-thousand-task graph stays cache-resident.
const evalLanes = 32

// laneBlock gathers the failure sets of up to evalLanes deferred trials.
type laneBlock struct {
	n      int              // lanes filled
	trial  [evalLanes]int32 // chunk-relative trial index per lane
	counts [evalLanes]int32 // failures per lane
	pos    []int32          // lane-grouped failure positions
	w      []float64        // their inflated weights
}

func (b *laneBlock) reset() {
	b.n = 0
	b.pos = b.pos[:0]
	b.w = b.w[:0]
}

func (b *laneBlock) full() bool { return b.n == evalLanes }

// add appends one trial's failure set (wk.failPos/failW prefixes).
func (b *laneBlock) add(trial int, pos []int32, w []float64) {
	b.trial[b.n] = int32(trial)
	b.counts[b.n] = int32(len(pos))
	b.pos = append(b.pos, pos...)
	b.w = append(b.w, w...)
	b.n++
}

// batchScratch is the per-worker SoA scratch of the lane kernel, allocated
// lazily on the first multi-failure block.
type batchScratch struct {
	comp  []float64 // n × evalLanes completion rows
	best  []float64 // evalLanes running maxima
	stash []float64 // start+failW staging, ≤ evalLanes per node
	cnt   []int32   // per-node failure counts → CSR offsets (n+1)
	fLane []int32   // node-major failure lanes
	fW    []float64 // node-major inflated weights
}

func (wk *mcWorker) batch() *batchScratch {
	if wk.bs == nil {
		n := len(wk.e.base)
		wk.bs = &batchScratch{
			comp:  make([]float64, n*evalLanes),
			best:  make([]float64, evalLanes),
			stash: make([]float64, evalLanes),
			cnt:   make([]int32, n+1),
		}
	}
	return wk.bs
}

// evalBlock computes the makespan of every lane in blk and stores each
// result at wk.res[blk.trial[lane]].
func (wk *mcWorker) evalBlock(blk *laneBlock) {
	e := wk.e
	bs := wk.batch()
	n := len(e.base)
	B := blk.n

	// Counting-sort the lane-grouped failures into node-major CSR order:
	// fLane/fW list the (lane, weight) pairs per position, ascending.
	cnt := bs.cnt[: n+1 : n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, p := range blk.pos {
		cnt[p+1]++
	}
	for k := 0; k < n; k++ {
		cnt[k+1] += cnt[k]
	}
	nf := len(blk.pos)
	if cap(bs.fLane) < nf {
		bs.fLane = make([]int32, nf)
		bs.fW = make([]float64, nf)
	}
	fLane := bs.fLane[:nf]
	fW := bs.fW[:nf]
	i := 0
	for lane := 0; lane < B; lane++ {
		for c := int32(0); c < blk.counts[lane]; c++ {
			p := blk.pos[i]
			slot := cnt[p]
			cnt[p]++
			fLane[slot] = int32(lane)
			fW[slot] = blk.w[i]
			i++
		}
	}
	// cnt[k] now holds the end offset of position k's failures.

	off, adj := e.frozen.PredCSR()
	base := e.base
	comp := bs.comp
	// The max sweeps compare completion times through a uint64 view of the
	// same memory: completions are non-negative and NaN-free, so IEEE
	// ordering coincides with unsigned integer ordering of the bit
	// patterns, and integer conditional assignment compiles branch-free
	// (CMOV) where the float comparison would branch per lane.
	compU := u64view(comp)
	stash := bs.stash
	o := 0
	fo := 0
	for k := 0; k < n; k++ {
		kb := k * evalLanes
		row := compU[kb : kb+B : kb+B]
		end := int(off[k+1])
		if o == end {
			for i := range row {
				row[i] = 0
			}
		} else {
			p0 := int(adj[o]) * evalLanes
			copy(row, compU[p0:p0+B])
			for o++; o < end; o++ {
				pb := int(adj[o]) * evalLanes
				pr := compU[pb : pb+B : pb+B]
				for i, v := range pr {
					r := row[i]
					if v > r {
						r = v
					}
					row[i] = r
				}
			}
		}
		// Failed lanes: completion = start + inflated weight, computed from
		// the start value so the sum is the scalar kernel's, bit for bit.
		rowF := comp[kb : kb+B : kb+B]
		fe := int(cnt[k])
		for f := fo; f < fe; f++ {
			stash[f-fo] = rowF[fLane[f]] + fW[f]
		}
		w := base[k]
		for i := range rowF {
			rowF[i] += w
		}
		for f := fo; f < fe; f++ {
			rowF[fLane[f]] = stash[f-fo]
		}
		fo = fe
	}
	// The makespan is attained at a sink (weights are non-negative, so a
	// successor's completion is never below its predecessor's): fold only
	// the sink rows — identical to the scalar kernel's max over all nodes.
	best := u64view(bs.best[:B])
	for i := range best {
		best[i] = 0
	}
	for _, s := range e.sinks {
		sb := int(s) * evalLanes
		sr := compU[sb : sb+B : sb+B]
		for i, v := range sr {
			r := best[i]
			if v > r {
				r = v
			}
			best[i] = r
		}
	}
	for lane := 0; lane < B; lane++ {
		wk.res[blk.trial[lane]] = bs.best[lane]
	}
}

// u64view reinterprets a float64 slice as its IEEE bit patterns in place.
func u64view(x []float64) []uint64 {
	if len(x) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(x))), len(x))
}

// evalScalar is the per-trial reference evaluation: scatter the failure
// set into the weight vector, run the scalar CSR kernel, restore.
func (wk *mcWorker) evalScalar(nfail int) float64 {
	e := wk.e
	for i := 0; i < nfail; i++ {
		wk.w[wk.failPos[i]] = wk.failW[i]
	}
	ms := e.frozen.MakespanTopo(wk.w, wk.comp)
	for i := 0; i < nfail; i++ {
		wk.w[wk.failPos[i]] = e.base[wk.failPos[i]]
	}
	return ms
}
