// Package metrics is a small, dependency-free metric registry with
// Prometheus text-format exposition. It provides exactly the three
// instrument kinds the makespand service needs — monotonic counters,
// gauges, and fixed-bucket latency histograms — in plain and labeled
// ("vec") forms, plus func-backed families whose samples are produced
// at scrape time from state that already exists elsewhere (the
// admission limiter's channel lengths, the artifact store's per-kind
// statistics). Every instrument is safe for concurrent use: counters
// and gauges are single atomics, histograms are one atomic per bucket
// plus a CAS-updated sum, and there are no locks on the observation
// path once a child has been created.
//
// The registry renders with WriteText in the Prometheus text exposition
// format (version 0.0.4): one `# HELP`/`# TYPE` header per family,
// samples sorted by label value for deterministic output, histograms
// with cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
// No part of this package imports anything beyond the standard library.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing integer metric. The zero
// value is unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is an integer metric that can go up and down. The zero value
// is unusable; obtain gauges from a Registry.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed buckets and tracks their
// sum. Buckets are non-cumulative internally and cumulated at
// exposition, so Observe touches exactly one bucket atomic plus the
// sum. The zero value is unusable; obtain histograms from a Registry.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefLatencyBuckets is the default upper-bound ladder for request
// latency histograms, in seconds: half a millisecond to one minute.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// kind is the exposition TYPE of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric with zero or more labeled children.
type family struct {
	name   string
	help   string
	typ    kind
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter/*Gauge/*Histogram

	collect CollectFn // func-backed families; children stays nil
}

// CollectFn produces a func-backed family's samples at scrape time:
// call emit once per child with its label values (matching the family's
// label names) and current value. Emission order does not matter; the
// writer sorts samples.
type CollectFn func(emit func(labelValues []string, value float64))

// Registry holds metric families and renders them with WriteText.
// Create with NewRegistry; methods are safe for concurrent use, and
// registration panics on an invalid or duplicate name (programmer
// error, caught at startup).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, typ kind, labels []string, bounds []float64, collect CollectFn) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic("metrics: invalid label name " + strconv.Quote(l))
		}
	}
	if typ == kindHistogram {
		if len(bounds) == 0 {
			panic("metrics: histogram " + name + " needs at least one bucket bound")
		}
		if !sort.Float64sAreSorted(bounds) {
			panic("metrics: histogram " + name + " bucket bounds must ascend")
		}
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds, collect: collect}
	if collect == nil {
		f.children = make(map[string]any)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("metrics: duplicate metric " + name)
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	return f.child(nil).(*Counter)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	return f.child(nil).(*Gauge)
}

// Histogram registers and returns an unlabeled histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, bounds, nil)
	return f.child(nil).(*Histogram)
}

// CounterVec registers a labeled counter family; children are created
// on first With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec " + name + " needs label names")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: GaugeVec " + name + " needs label names")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil, nil)}
}

// HistogramVec registers a labeled histogram family sharing one bucket
// ladder across children.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: HistogramVec " + name + " needs label names")
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds, nil)}
}

// CounterFunc registers a counter family whose samples are produced by
// collect at scrape time (for monotonic counts that already live
// elsewhere, e.g. cache hit totals). labels may be nil for a single
// unlabeled sample.
func (r *Registry) CounterFunc(name, help string, labels []string, collect CollectFn) {
	if collect == nil {
		panic("metrics: CounterFunc " + name + " needs a collect func")
	}
	r.register(name, help, kindCounter, labels, nil, collect)
}

// GaugeFunc registers a gauge family whose samples are produced by
// collect at scrape time (for instantaneous values that already live
// elsewhere, e.g. channel lengths). labels may be nil for a single
// unlabeled sample.
func (r *Registry) GaugeFunc(name, help string, labels []string, collect CollectFn) {
	if collect == nil {
		panic("metrics: GaugeFunc " + name + " needs a collect func")
	}
	r.register(name, help, kindGauge, labels, nil, collect)
}

// child returns the instrument for the given label values, creating it
// on first use. The key doubles as the exposition sort key.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		switch f.typ {
		case kindCounter:
			c = &Counter{}
		case kindGauge:
			c = &Gauge{}
		case kindHistogram:
			c = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.children[key] = c
	}
	return c
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in the family's
// label-name order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelSet renders {k="v",...} for the given names and values, with
// extra appended verbatim (the histogram le pair). Empty when there are
// no pairs at all.
func labelSet(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteText renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4). Samples within a
// family are sorted by label values, so successive scrapes of a stable
// system are byte-comparable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

// TextContentType is the Content-Type of WriteText's output.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

func (f *family) writeText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	type sample struct {
		key    string
		values []string
		value  float64
		hist   *Histogram
	}
	var samples []sample
	if f.collect != nil {
		f.collect(func(labelValues []string, value float64) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("metrics: %s collect emitted %d label values, want %d", f.name, len(labelValues), len(f.labels)))
			}
			vals := append([]string(nil), labelValues...)
			samples = append(samples, sample{key: strings.Join(vals, "\x00"), values: vals, value: value})
		})
	} else {
		f.mu.Lock()
		for key, c := range f.children {
			s := sample{key: key}
			if key != "" || len(f.labels) > 0 {
				s.values = strings.Split(key, "\x00")
			}
			switch c := c.(type) {
			case *Counter:
				s.value = float64(c.Value())
			case *Gauge:
				s.value = float64(c.Value())
			case *Histogram:
				s.hist = c
			}
			samples = append(samples, s)
		}
		f.mu.Unlock()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].key < samples[j].key })
	for _, s := range samples {
		if s.hist != nil {
			if err := s.hist.writeText(w, f.name, f.labels, s.values); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labels, s.values, ""), formatValue(s.value)); err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writeText(w io.Writer, name string, labelNames, labelValues []string) error {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(+1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		le := `le="` + formatBound(bound) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelSet(labelNames, labelValues, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSet(labelNames, labelValues, ""), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSet(labelNames, labelValues, ""), cum)
	return err
}
