package failure

import (
	"fmt"

	"repro/internal/dag"
)

// Verification models the cost of the error detector run after every
// execution attempt of a task (paper §I–II: replication-based, ABFT,
// orthogonality checks, data-analytics detectors, …). The verification
// itself is assumed reliable, as in the paper.
type Verification struct {
	// Fraction adds Fraction·a_i to every task (detectors whose cost
	// scales with the task, e.g. ABFT checksums).
	Fraction float64
	// Fixed adds a constant overhead to every task (e.g. a signature
	// comparison).
	Fixed float64
}

// Validate checks the overhead parameters.
func (v Verification) Validate() error {
	if v.Fraction < 0 || v.Fixed < 0 || v.Fraction != v.Fraction || v.Fixed != v.Fixed {
		return fmt.Errorf("failure: invalid verification overhead %+v", v)
	}
	return nil
}

// Apply returns a copy of g whose task weights include the verification
// overhead: a_i → a_i·(1+Fraction) + Fixed. Because the verification runs
// after every attempt, the verified weight is the correct per-attempt
// weight for all estimators in this module; zero-weight (structural) tasks
// stay zero so synthetic sources/sinks remain free.
func (v Verification) Apply(g *dag.Graph) (*dag.Graph, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	out := g.Clone()
	for i := 0; i < out.NumTasks(); i++ {
		a := out.Weight(i)
		if a == 0 {
			continue
		}
		if err := out.SetWeight(i, a*(1+v.Fraction)+v.Fixed); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Overhead returns the relative increase in total weight that Apply would
// cause on g.
func (v Verification) Overhead(g *dag.Graph) (float64, error) {
	verified, err := v.Apply(g)
	if err != nil {
		return 0, err
	}
	base := g.TotalWeight()
	if base == 0 {
		return 0, nil
	}
	return verified.TotalWeight()/base - 1, nil
}
