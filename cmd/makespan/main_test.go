package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dag"
	"repro/internal/report"
)

func TestLoadGraphGeneratorAndFile(t *testing.T) {
	g, err := loadGraph("cholesky", 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 20 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
	if _, err := loadGraph("nope", 4, ""); err == nil {
		t.Fatal("bad kind accepted")
	}
	// Round-trip through a JSON file.
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dag.WriteJSON(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadGraph("ignored", 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != g.NumTasks() {
		t.Fatalf("file graph tasks = %d", got.NumTasks())
	}
	if _, err := loadGraph("", 0, "/does/not/exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildModel(t *testing.T) {
	g, _ := loadGraph("lu", 4, "")
	m, err := buildModel(g, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lambda <= 0 {
		t.Fatalf("λ = %v", m.Lambda)
	}
	m2, err := buildModel(g, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Lambda != 0.5 {
		t.Fatalf("explicit λ ignored: %v", m2.Lambda)
	}
	if _, err := buildModel(g, 1.5, 0); err == nil {
		t.Fatal("bad pfail accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := options{kind: "cholesky", k: 3, pfail: 0.01, seed: 1, methods: "paper", format: "text"}
	// Full CLI path with a tiny workload and no Monte Carlo.
	o := base
	o.bounds = true
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o = base
	o.trials, o.methods = 500, "all"
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o = base
	o.methods = "First Order,Sculli"
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o = base
	o.methods = "bogus"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("bogus method accepted")
	}
	o = base
	o.format = "yaml"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("bad format accepted")
	}
	o = base
	o.format, o.trials, o.quantiles = "json", 500, "0.5,0.95"
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o = base
	o.quantiles = "0.5"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("quantiles without trials accepted")
	}
	o = base
	o.trials, o.quantiles = 500, "1.5"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
}

func TestParseQuantiles(t *testing.T) {
	// The shared parser lives in internal/report; this pins the CLI's
	// contract through it.
	qs, err := report.ParseQuantiles("0.5, 0.95")
	if err != nil || len(qs) != 2 || qs[0] != 0.5 || qs[1] != 0.95 {
		t.Fatalf("qs = %v err = %v", qs, err)
	}
	if qs, err := report.ParseQuantiles(""); err != nil || qs != nil {
		t.Fatalf("empty: %v %v", qs, err)
	}
	if _, err := report.ParseQuantiles("abc"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := report.ParseQuantiles("1.5"); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
}
