// Package service implements makespand, the long-running HTTP estimation
// daemon: a content-addressed graph registry caches the expensive
// per-graph artifacts (frozen CSR forms, Dodin reduction plans, Monte
// Carlo estimator snapshots with their sampler threshold tables, frozen
// schedules per (policy, procs, λ), bounds sweeper scratch) across
// requests behind an LRU with a byte budget, so repeat estimates hit
// warm state and skip construction entirely. Responses are rendered
// through internal/report — the same writers the CLIs use — and are
// byte-identical to the corresponding `makespan -format json` /
// `experiments -format json` / `schedsim -format json` output for the
// same inputs (timing fields excepted) and deterministic under
// concurrent load. See DESIGN.md §"The makespand service" for the
// ownership model and docs/API.md for the HTTP reference.
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/montecarlo"
	"repro/internal/schedmc"
	"repro/internal/spgraph"
)

// GraphMeta labels how a registry entry was produced. Generated entries
// remember their (kind, k) so sweep responses can carry the same
// factorization label the experiments CLI prints; submitted graphs are
// labeled "custom".
type GraphMeta struct {
	Kind string
	K    int
}

// Entry is one cached graph with its per-graph artifacts. The graph, the
// frozen form and every cached artifact are shared read-only across
// requests; per-request scratch (Monte Carlo workers, Dodin replay
// buffers, bounds sweepers) is pooled or private per goroutine, never
// shared mid-flight.
type Entry struct {
	reg *Registry

	// Immutable after construction.
	ID        string
	Canonical []byte // canonical dag JSON; its SHA-256 is the ID
	G         *dag.Graph
	Frozen    *dag.Frozen
	D0        float64 // failure-free makespan d(G)

	mu     sync.Mutex
	meta   GraphMeta // guarded: upgradeable from "custom" to a generator label
	plans  map[int]*planSlot
	ests   map[estKey]*estSlot
	scheds map[schedKey]*schedSlot
	adapts map[adaptiveKey]*adaptiveSlot
	fixed  map[fixedKey]*fixedFlight

	// kernelRuns counts Monte Carlo kernel executions this entry paid
	// for; coalesced requests share one (see coalesce.go).
	kernelRuns atomic.Int64

	sweepers sync.Pool // *bounds.Sweeper, per-goroutine scratch
	paths    sync.Pool // *dag.PathEvaluator, per-goroutine scratch

	baseBytes     int64 // canonical JSON + frozen form + graph estimate
	artifactBytes int64 // accumulated plan/estimator bytes
}

// planSlot builds one Dodin plan exactly once per (graph, atom cap);
// concurrent requesters block on the winner's Do.
type planSlot struct {
	once sync.Once
	plan *spgraph.Plan
	err  error
}

// estKey identifies a Monte Carlo estimator snapshot: the compiled
// per-task probabilities and threshold tables depend on the failure
// model's rate and the sampling mode, while trials/seed/workers vary per
// request via WithConfig.
type estKey struct {
	lambda float64
	mode   montecarlo.Mode
}

type estSlot struct {
	once sync.Once
	est  *montecarlo.Estimator
	err  error
}

// schedKey identifies a frozen-schedule estimator: the committed
// schedule depends on the policy, the processor count and — through the
// First Order priorities and the compiled failure probabilities — the
// error rate. Trials/seed/workers vary per request via WithConfig.
type schedKey struct {
	policy schedmc.Policy
	procs  int
	lambda float64
}

type schedSlot struct {
	once sync.Once
	est  *schedmc.Estimator
	err  error
}

// RegistryStats is a snapshot of cache occupancy and effectiveness,
// served by /healthz.
type RegistryStats struct {
	Graphs    int
	UsedBytes int64
	Budget    int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Registry is the content-addressed graph store: canonical-JSON SHA-256
// keys, most-recently-used entries kept warm, least-recently-used entries
// evicted — artifacts and all — once the byte budget overflows.
type Registry struct {
	mu     sync.Mutex
	budget int64 // <= 0: unlimited
	used   int64
	lru    *list.List // of *Entry; front = most recently used
	byID   map[string]*list.Element
	// genIDs short-circuits generator specs: the named workloads are
	// deterministic, so (kind, k) -> id lets a warm request skip graph
	// generation and content hashing entirely.
	genIDs map[GraphMeta]string

	hits, misses, evictions int64
}

// NewRegistry creates a registry with the given byte budget (<= 0 means
// unlimited). The budget is enforced against the registry's own size
// accounting — canonical JSON, frozen arrays and cached artifacts — and
// the most recently touched entry is always retained even if it alone
// exceeds the budget (evicting the entry a request is using would just
// force an immediate rebuild).
func NewRegistry(budget int64) *Registry {
	return &Registry{
		budget: budget,
		lru:    list.New(),
		byID:   make(map[string]*list.Element),
		genIDs: make(map[GraphMeta]string),
	}
}

// GraphID returns the content address of a graph: "sha256:" + the hex
// digest of its canonical JSON. Two submissions of the same DAG — inline
// JSON or generator spec — collapse onto one entry.
func GraphID(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Add registers g, returning its entry and whether it was newly created.
// An existing entry is touched to the front of the LRU and returned.
// Labels only upgrade: resubmitting a generated graph as raw JSON keeps
// the generator label, while naming a previously raw-submitted graph by
// its generator spec replaces "custom" with the spec (and indexes it),
// so sweep responses always carry the most specific factorization known.
func (r *Registry) Add(g *dag.Graph, meta GraphMeta) (*Entry, bool, error) {
	canonical, err := json.Marshal(g)
	if err != nil {
		return nil, false, err
	}
	id := GraphID(canonical)
	r.mu.Lock()
	if el, ok := r.byID[id]; ok {
		r.lru.MoveToFront(el)
		r.hits++
		e := el.Value.(*Entry)
		r.upgradeMetaLocked(e, meta)
		r.mu.Unlock()
		return e, false, nil
	}
	r.mu.Unlock()

	// Build outside the lock: freezing a large graph should not stall
	// unrelated lookups. A concurrent identical Add may win the race;
	// the loser's entry is discarded below.
	frozen, err := dag.Freeze(g)
	if err != nil {
		return nil, false, err
	}
	e := &Entry{
		ID:        id,
		Canonical: canonical,
		meta:      meta,
		G:         g,
		Frozen:    frozen,
		D0:        frozen.Makespan(),
		plans:     make(map[int]*planSlot),
		ests:      make(map[estKey]*estSlot),
		scheds:    make(map[schedKey]*schedSlot),
		adapts:    make(map[adaptiveKey]*adaptiveSlot),
		fixed:     make(map[fixedKey]*fixedFlight),
		baseBytes: int64(len(canonical)) + frozen.SizeBytes() + graphSizeEstimate(g),
	}
	e.sweepers.New = func() any { return bounds.NewSweeperFrozen(frozen) }
	e.paths.New = func() any { return dag.NewPathEvaluatorFrozen(frozen) }

	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.byID[id]; ok { // lost the race
		r.lru.MoveToFront(el)
		r.hits++
		won := el.Value.(*Entry)
		r.upgradeMetaLocked(won, meta)
		return won, false, nil
	}
	e.reg = r
	r.byID[id] = r.lru.PushFront(e)
	if meta.Kind != "" && meta.Kind != "custom" {
		r.genIDs[meta] = id
	}
	r.used += e.baseBytes
	r.misses++
	r.evictLocked(e)
	return e, true, nil
}

// upgradeMetaLocked relabels e when the caller knows a generator spec
// for content previously submitted as "custom", and indexes it. Called
// with r.mu held.
func (r *Registry) upgradeMetaLocked(e *Entry, meta GraphMeta) {
	if meta.Kind == "" || meta.Kind == "custom" {
		return
	}
	e.mu.Lock()
	if e.meta.Kind == "" || e.meta.Kind == "custom" {
		e.meta = meta
	}
	e.mu.Unlock()
	r.genIDs[meta] = e.ID
}

// Meta returns the entry's current label (generator spec or "custom").
func (e *Entry) Meta() GraphMeta {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.meta
}

// LookupGenerated resolves a generator spec without generating: a warm
// named workload costs one map probe instead of generate + marshal +
// hash. Falls back to a miss when the entry was evicted.
func (r *Registry) LookupGenerated(meta GraphMeta) (*Entry, bool) {
	r.mu.Lock()
	id, ok := r.genIDs[meta]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return r.Get(id)
}

// Get returns the entry for id, touching it to the front of the LRU.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byID[id]
	if !ok {
		r.misses++
		return nil, false
	}
	r.lru.MoveToFront(el)
	r.hits++
	return el.Value.(*Entry), true
}

// Stats snapshots cache occupancy and hit counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Graphs:    r.lru.Len(),
		UsedBytes: r.used,
		Budget:    r.budget,
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
	}
}

// grow records delta bytes of freshly built artifacts on e and evicts
// colder entries if the budget overflowed. The residency check and both
// counters update under r.mu (then e.mu), the same order eviction uses:
// whichever of grow and evict runs second sees the other's effect in
// full, so r.used never drifts. Entries evicted while building stay
// usable by requests already holding them (they are ordinary GC-managed
// values); they simply stop being findable, so later requests rebuild.
func (r *Registry) grow(e *Entry, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, resident := r.byID[e.ID]
	e.mu.Lock()
	e.artifactBytes += delta
	e.mu.Unlock()
	if !resident {
		return // evicted while building; not part of r.used anymore
	}
	r.used += delta
	r.evictLocked(e)
}

// evictLocked drops LRU-tail entries until the budget holds, never
// evicting keep (the entry the current request is touching).
func (r *Registry) evictLocked(keep *Entry) {
	if r.budget <= 0 {
		return
	}
	for r.used > r.budget && r.lru.Len() > 1 {
		el := r.lru.Back()
		victim := el.Value.(*Entry)
		if victim == keep {
			return
		}
		r.lru.Remove(el)
		delete(r.byID, victim.ID)
		victim.mu.Lock()
		if id, ok := r.genIDs[victim.meta]; ok && id == victim.ID {
			delete(r.genIDs, victim.meta)
		}
		r.used -= victim.baseBytes + victim.artifactBytes
		victim.mu.Unlock()
		r.evictions++
	}
}

// graphSizeEstimate approximates the retained size of the mutable graph:
// adjacency slices, weights and names.
func graphSizeEstimate(g *dag.Graph) int64 {
	s := int64(g.NumTasks())*64 + int64(g.NumEdges())*16
	for i := 0; i < g.NumTasks(); i++ {
		s += int64(len(g.Name(i)))
	}
	return s
}

// normAtoms maps a request's Dodin atom cap onto the plan-cache key:
// 0 means the spgraph default, negative means unlimited.
func normAtoms(atoms int) int {
	if atoms == 0 {
		return spgraph.DefaultMaxAtoms
	}
	if atoms < 0 {
		return -1
	}
	return atoms
}

// Plan returns the entry's recorded Dodin reduction schedule for the
// given atom cap, recording it under model on first use. The recording
// is keyed by the normalized cap only: a plan replays bit-identically
// under every failure model (see spgraph.Plan), so one recording serves
// estimates and sweeps at any pfail.
func (e *Entry) Plan(atoms int, model failure.Model) (*spgraph.Plan, error) {
	key := normAtoms(atoms)
	e.mu.Lock()
	slot := e.plans[key]
	if slot == nil {
		slot = &planSlot{}
		e.plans[key] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		_, _, slot.plan, slot.err = spgraph.DodinPlan(e.G, model, atoms)
		if slot.err == nil {
			e.addArtifactBytes(slot.plan.SizeBytes())
		}
	})
	return slot.plan, slot.err
}

// Estimator returns the entry's compiled Monte Carlo estimator for the
// failure model, building it (threshold tables included) on first use.
// Callers derive per-request run configs via WithConfig; the snapshot
// itself is shared read-only and safe for concurrent runs.
func (e *Entry) Estimator(model failure.Model, mode montecarlo.Mode) (*montecarlo.Estimator, error) {
	key := estKey{lambda: model.Lambda, mode: mode}
	e.mu.Lock()
	slot := e.ests[key]
	if slot == nil {
		slot = &estSlot{}
		e.ests[key] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		slot.est, slot.err = montecarlo.NewEstimatorFrozen(e.Frozen, model, montecarlo.Config{
			Trials: 1, Workers: 1, Mode: mode,
		})
		if slot.err == nil {
			e.addArtifactBytes(slot.est.SizeBytes())
		}
	})
	return slot.est, slot.err
}

// ScheduleEstimator returns the entry's frozen-schedule Monte Carlo
// estimator for (policy, procs, model), building it — priorities, list
// schedule, schedule-DAG freeze, sampler threshold tables — exactly once
// per key; concurrent requesters block on the winner. A warm request
// therefore skips schedule freezing entirely and pays only the O(1)
// WithConfig reconfiguration. The artifact is accounted against the
// registry byte budget like plans and estimators.
func (e *Entry) ScheduleEstimator(policy schedmc.Policy, procs int, model failure.Model) (*schedmc.Estimator, error) {
	key := schedKey{policy: policy, procs: procs, lambda: model.Lambda}
	e.mu.Lock()
	slot := e.scheds[key]
	if slot == nil {
		slot = &schedSlot{}
		e.scheds[key] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		var fs *schedmc.FrozenSchedule
		fs, slot.err = schedmc.Freeze(e.G, policy, procs, model)
		if slot.err != nil {
			return
		}
		slot.est, slot.err = schedmc.NewEstimator(fs, model, schedmc.Config{Trials: 1, Workers: 1})
		if slot.err == nil {
			e.addArtifactBytes(slot.est.SizeBytes())
		}
	})
	return slot.est, slot.err
}

// Sweeper checks a bounds sweeper out of the entry's pool; return it with
// PutSweeper. Sweepers are per-request scratch over the shared frozen
// graph: they are cached for reuse (the pool), not counted against the
// byte budget (the GC may reclaim them under pressure).
func (e *Entry) Sweeper() *bounds.Sweeper {
	return e.sweepers.Get().(*bounds.Sweeper)
}

// PutSweeper returns a sweeper to the pool.
func (e *Entry) PutSweeper(sw *bounds.Sweeper) {
	e.sweepers.Put(sw)
}

// PathEvaluator checks a longest-path evaluator out of the entry's pool
// (warm First Order estimates); return it with PutPathEvaluator.
func (e *Entry) PathEvaluator() *dag.PathEvaluator {
	return e.paths.Get().(*dag.PathEvaluator)
}

// PutPathEvaluator returns an evaluator to the pool.
func (e *Entry) PutPathEvaluator(pe *dag.PathEvaluator) {
	e.paths.Put(pe)
}

// CacheInfo reports the entry's artifact population for GET /v1/graphs.
type CacheInfo struct {
	Bytes         int64
	DodinPlans    int
	Estimators    int
	Schedules     int
	AdaptiveSnaps int
}

// Cache snapshots the entry's artifact counts and accounted bytes.
func (e *Entry) Cache() CacheInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	snaps := 0
	for _, slot := range e.adapts {
		slot.mu.Lock()
		if slot.snap != nil {
			snaps++
		}
		slot.mu.Unlock()
	}
	return CacheInfo{
		Bytes:         e.baseBytes + e.artifactBytes,
		DodinPlans:    len(e.plans),
		Estimators:    len(e.ests),
		Schedules:     len(e.scheds),
		AdaptiveSnaps: snaps,
	}
}

// KernelRuns reports how many Monte Carlo kernel executions this entry
// has actually paid for; coalesced concurrent requests and snapshot
// cache hits share or skip runs, so this can be far below the request
// count. The coalescing tests assert on it.
func (e *Entry) KernelRuns() int64 { return e.kernelRuns.Load() }

func (e *Entry) addArtifactBytes(delta int64) {
	if e.reg != nil {
		e.reg.grow(e, delta)
		return
	}
	e.mu.Lock()
	e.artifactBytes += delta
	e.mu.Unlock()
}

// SizeBytes reports the entry's total accounted size.
func (e *Entry) SizeBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.baseBytes + e.artifactBytes
}
