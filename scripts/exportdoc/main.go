// Command exportdoc is the exported-comment gate: it fails when an
// exported identifier in the given packages lacks a doc comment, or when
// a multi-file package lacks a package comment. It complements the
// pinned staticcheck job (whose ST1020-ST1022 checks enforce the *style*
// of doc comments but not their existence) so the documented packages —
// internal/schedmc, internal/sched, internal/failure — cannot silently
// grow undocumented API.
//
// Usage:
//
//	go run ./scripts/exportdoc ./internal/schedmc ./internal/sched ./internal/failure
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: exportdoc <package dir> ...")
		os.Exit(2)
	}
	failures := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportdoc:", err)
			os.Exit(2)
		}
		failures += n
	}
	if failures > 0 {
		fmt.Printf("\nexportdoc: %d undocumented exported identifier(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("exportdoc: every exported identifier is documented")
}

// checkDir parses one package directory (tests excluded) and reports
// undocumented exported declarations.
func checkDir(dir string) (failures int, err error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s %s has no doc comment\n", filepath.ToSlash(p.Filename), p.Line, what, name)
		failures++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			failures++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return failures, nil
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are internal API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Recv.Name" for methods, "Name" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return fmt.Sprintf("(method) %s", d.Name.Name)
}

// checkGenDecl walks const/var/type declarations. A doc comment on the
// grouped declaration covers its members, matching godoc's rendering.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if name.IsExported() && field.Doc == nil && field.Comment == nil {
							report(name.Pos(), "field", s.Name.Name+"."+name.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
}
