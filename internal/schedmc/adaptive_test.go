package schedmc

import (
	"testing"

	"repro/internal/montecarlo"
)

// Adaptive stopping over a schedule DAG inherits the engine's guarantees:
// a converged run is a whole-chunk prefix bit-identical to the same-length
// fixed run, and warm extension to a tighter tolerance matches a cold run.
func TestScheduleAdaptiveMatchesFixedAndWarmExtend(t *testing.T) {
	g := mustLU(t, 8)
	model := mustModel(t, g, 0.05)
	fs, err := Freeze(g, PolicyCP, 4, model)
	if err != nil {
		t.Fatal(err)
	}
	probeE, err := NewEstimator(fs, model, Config{Trials: montecarlo.ChunkTrials, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := probeE.Run()
	if err != nil {
		t.Fatal(err)
	}
	tol := probe.CI95 / 2

	ad, err := probeE.WithConfig(Config{Seed: 11, Tolerance: tol, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, snap, err := ad.ResumeAdaptive(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.TrialsRun%montecarlo.ChunkTrials != 0 {
		t.Fatalf("adaptive schedule run: %+v", res)
	}
	fixedE, err := probeE.WithConfig(Config{Seed: 11, Trials: res.TrialsRun})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := fixedE.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != fixed.Mean || res.StdDev != fixed.StdDev || res.Min != fixed.Min || res.Max != fixed.Max {
		t.Fatalf("adaptive prefix != fixed run:\n%+v\n%+v", res, fixed)
	}

	tight, err := probeE.WithConfig(Config{Seed: 11, Tolerance: tol / 2})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, warmSnap, err := tight.ResumeAdaptive(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, coldSnap, err := tight.ResumeAdaptive(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes != coldRes || warmSnap.Chunks() != coldSnap.Chunks() {
		t.Fatalf("warm extend != cold run:\n%+v (%d chunks)\n%+v (%d chunks)",
			warmRes, warmSnap.Chunks(), coldRes, coldSnap.Chunks())
	}
	if !tight.SnapshotConverged(warmSnap) {
		t.Fatal("SnapshotConverged false for the snapshot the config produced")
	}
	sr, err := tight.SnapshotResult(warmSnap)
	if err != nil {
		t.Fatal(err)
	}
	if sr != warmRes {
		t.Fatalf("SnapshotResult %+v != run result %+v", sr, warmRes)
	}
}

// Config validation flows through to the engine: the schedule layer adds
// no silent reinterpretation of the adaptive knobs.
func TestScheduleAdaptiveConfigValidation(t *testing.T) {
	g := mustLU(t, 4)
	model := mustModel(t, g, 0.01)
	fs, err := Freeze(g, PolicyCP, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Tolerance: -1},
		{Tolerance: 0.1, Trials: 100},
		{Tolerance: 0.1, TargetQuantile: 2},
		{MaxTrials: 100},
		{TargetQuantile: 0.5},
	}
	for _, cfg := range bad {
		if _, err := NewEstimator(fs, model, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	e, err := NewEstimator(fs, model, Config{Tolerance: 0.1, TargetQuantile: 0.9, MaxTrials: 10000})
	if err != nil {
		t.Fatalf("valid adaptive config rejected: %v", err)
	}
	if _, err := e.WithConfig(Config{Tolerance: 0.1, Trials: 5}); err == nil {
		t.Fatal("WithConfig accepted Trials+Tolerance")
	}
}
