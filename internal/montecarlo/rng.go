package montecarlo

// splitMix64 is Vigna's SplitMix64 generator: one 64-bit add and a 3-round
// finalizer per draw, fully inlinable, passing BigCrush. The fused Monte
// Carlo sampler draws per trial chunk from an independent splitMix64 stream
// derived from (Seed, chunk), so results are reproducible and independent
// of the worker count. Streams are offsets of one global sequence; with the
// ~2^64 period and the mixed per-chunk offsets, overlap between chunks is
// negligible at any realistic trial count.
type splitMix64 struct{ s uint64 }

// mix64 is the SplitMix64 output finalizer (a strong 64-bit mixer).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// newChunkRNG returns the deterministic stream of one trial chunk.
func newChunkRNG(seed uint64, chunk int64) splitMix64 {
	return splitMix64{s: mix64(seed ^ mix64(uint64(chunk)+0x9e3779b97f4a7c15))}
}

// Uint64 returns the next 64 random bits.
func (r *splitMix64) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

// Float64 returns a uniform sample in [0, 1).
func (r *splitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// unitOpen returns a uniform sample in (0, 1], safe as a log argument.
func (r *splitMix64) unitOpen() float64 {
	return float64((r.Uint64()>>11)+1) * 0x1p-53
}
