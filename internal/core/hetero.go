package core

import (
	"fmt"

	"repro/internal/dag"
)

// FirstOrderRates is FirstOrder with a per-task error rate λ_i — needed as
// soon as tasks run at different DVFS speeds (paper Eq. 1 makes λ a
// function of speed) or on processors of different quality. The derivation
// of §IV goes through unchanged because it expands each task's failure
// probability independently:
//
//	E(G) = d(G) + Σ_i λ_i · a_i · (d(G_i) − d(G)) + O(λ²) .
func FirstOrderRates(g *dag.Graph, rates []float64) (FirstOrderResult, error) {
	if len(rates) != g.NumTasks() {
		return FirstOrderResult{}, fmt.Errorf("core: %d rates for %d tasks", len(rates), g.NumTasks())
	}
	for i, r := range rates {
		if r < 0 || r != r {
			return FirstOrderResult{}, fmt.Errorf("core: bad rate λ_%d = %v", i, r)
		}
	}
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return FirstOrderResult{}, err
	}
	d := pe.Makespan()
	heads := pe.Heads()
	tails := pe.Tails()
	n := g.NumTasks()
	res := FirstOrderResult{
		FailureFree:  d,
		Contribution: make([]float64, n),
	}
	est := d
	for i := 0; i < n; i++ {
		delta := heads[i] + tails[i] - d
		if delta < 0 {
			delta = 0
		}
		c := g.Weight(i) * delta
		res.Contribution[i] = c
		est += rates[i] * c
	}
	res.Estimate = est
	return res, nil
}
