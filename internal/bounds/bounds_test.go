package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func TestJensenLowerChainIsExact(t *testing.T) {
	// On a chain the makespan IS the path sum, so Jensen is tight.
	g := dag.Chain(5, 1, 2)
	m := failure.Model{Lambda: 0.1}
	lo, err := JensenLower(g, m)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if math.Abs(lo-exact) > 1e-12 {
		t.Fatalf("chain Jensen %v != exact %v", lo, exact)
	}
}

func TestSweepUpperChainIsExact(t *testing.T) {
	g := dag.Chain(5, 1, 2)
	m := failure.Model{Lambda: 0.1}
	hi, err := SweepUpper(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if math.Abs(hi-exact) > 1e-12 {
		t.Fatalf("chain sweep %v != exact %v", hi, exact)
	}
}

func TestSweepUpperForkJoinIsExact(t *testing.T) {
	// Fork-join branches are genuinely independent: the sweep is exact.
	g := dag.ForkJoin(5, 1.0)
	m := failure.Model{Lambda: 0.3}
	hi, err := SweepUpper(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if math.Abs(hi-exact) > 1e-12 {
		t.Fatalf("fork-join sweep %v != exact %v", hi, exact)
	}
}

func TestBracketContainsExactOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 12, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
		if err != nil {
			return false
		}
		m := failure.Model{Lambda: 0.08}
		lo, hi, err := Bracket(g, m, -1)
		if err != nil {
			return false
		}
		exact, err := montecarlo.ExactTwoState(g, m)
		if err != nil {
			return false
		}
		return lo <= exact+1e-9 && exact <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsOrdering(t *testing.T) {
	// d(G) <= JensenLower <= SweepUpper on every workload family.
	m := failure.Model{Lambda: 0.02}
	graphs := []*dag.Graph{
		dag.Wavefront(5, 1),
		dag.Pipeline(4, 3, 1),
		dag.DivideAndConquer(3, 1),
	}
	if fft, err := dag.FFT(8, 1); err == nil {
		graphs = append(graphs, fft)
	}
	ch, _ := linalg.Cholesky(5, linalg.KernelTimes{})
	graphs = append(graphs, ch)
	for _, g := range graphs {
		d, _ := FailureFree(g)
		lo, err := JensenLower(g, m)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := SweepUpper(g, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d > lo+1e-12 {
			t.Errorf("d(G) %v above Jensen %v", d, lo)
		}
		if lo > hi+1e-9 {
			t.Errorf("Jensen %v above sweep %v", lo, hi)
		}
	}
}

func TestFirstOrderInsideBracket(t *testing.T) {
	g, _ := linalg.LU(8, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	lo, hi, err := Bracket(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	fo, _ := core.FirstOrder(g, m)
	if fo.Estimate < lo-1e-6 || fo.Estimate > hi+1e-6 {
		t.Fatalf("First Order %v outside bracket [%v, %v]", fo.Estimate, lo, hi)
	}
	// The upper bound carries the same independence bias as Dodin (a few
	// percent on LU); it must still be a usable certificate.
	if (hi-lo)/fo.Estimate > 0.10 {
		t.Fatalf("bracket too wide: [%v, %v]", lo, hi)
	}
}

func TestJensenGeometricDominatesTwoState(t *testing.T) {
	// Geometric expected durations exceed 2-state ones, so the geometric
	// Jensen bound dominates.
	g, _ := linalg.QR(5, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	two, err := JensenLower(g, m)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := JensenLowerGeometric(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if geo < two {
		t.Fatalf("geometric Jensen %v below 2-state %v", geo, two)
	}
	d, _ := FailureFree(g)
	if two < d {
		t.Fatalf("Jensen %v below d(G) %v", two, d)
	}
}

func TestBoundsRejectCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := JensenLower(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Error("cycle accepted by JensenLower")
	}
	if _, err := SweepUpper(g, failure.Model{Lambda: 0.1}, 0); err == nil {
		t.Error("cycle accepted by SweepUpper")
	}
	if _, _, err := Bracket(g, failure.Model{Lambda: 0.1}, 0); err == nil {
		t.Error("cycle accepted by Bracket")
	}
}

func TestSweepUpperEmptyGraph(t *testing.T) {
	hi, err := SweepUpper(dag.New(0), failure.Model{Lambda: 0.1}, 0)
	if err != nil || hi != 0 {
		t.Fatalf("empty sweep = %v, %v", hi, err)
	}
}

func TestSweepUpperCapStability(t *testing.T) {
	g, _ := linalg.Cholesky(6, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	tight, err := SweepUpper(g, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SweepUpper(g, m, 256)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tight-loose) / loose; rel > 0.01 {
		t.Fatalf("cap sensitivity %v too high (%v vs %v)", rel, tight, loose)
	}
}

// A Sweeper must reproduce SweepUpper bit for bit across repeated calls
// with different models (the sweep scheduler reuses one per point).
func TestSweeperMatchesSweepUpper(t *testing.T) {
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSweeper(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, pfail := range []float64{0.1, 0.01, 0.001, 0.01} { // repeat 0.01: scratch reuse
		m, err := failure.FromPfail(pfail, g.MeanWeight())
		if err != nil {
			t.Fatal(err)
		}
		want, err := SweepUpper(g, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sw.Upper(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pfail=%g: Sweeper %v != SweepUpper %v", pfail, got, want)
		}
	}
}

// The warm Sweeper.Bracket must agree bit for bit with the package-level
// Bracket (which freezes fresh state per call).
func TestSweeperBracketMatchesBracket(t *testing.T) {
	g, err := linalg.LU(8, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	wantLo, wantHi, err := Bracket(g, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSweeper(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // repeat: scratch reuse must not drift
		lo, hi, err := sw.Bracket(model, 0)
		if err != nil {
			t.Fatal(err)
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("warm bracket [%v, %v] != cold [%v, %v]", lo, hi, wantLo, wantHi)
		}
	}
}
