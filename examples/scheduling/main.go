// Scheduling: the extension motivating the paper — CP/HEFT-style list
// scheduling needs expected path lengths once tasks can fail. This example
// schedules an LU factorization on a bounded processor count twice, with
// deterministic bottom-level priorities and with First Order expected
// bottom levels, then simulates both policies under silent errors.
//
// Run with:
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"sort"

	makespan "repro"
)

func main() {
	const (
		k      = 8
		procs  = 8
		pfail  = 0.01
		trials = 3000
	)
	g, err := makespan.LU(k)
	if err != nil {
		log.Fatal(err)
	}
	model, err := makespan.ModelFromPfail(pfail, g.MeanWeight())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU k=%d: %d tasks on %d processors, pfail = %g\n\n", k, g.NumTasks(), procs, pfail)

	det, err := makespan.SchedulingPriorities(g)
	if err != nil {
		log.Fatal(err)
	}
	fa, err := makespan.FailureAwarePriorities(g, model)
	if err != nil {
		log.Fatal(err)
	}

	// How different are the two rankings? Count pairwise order flips among
	// the top of the list.
	type ranked struct {
		id   int
		prio float64
	}
	rank := func(p []float64) []int {
		rs := make([]ranked, len(p))
		for i, v := range p {
			rs[i] = ranked{i, v}
		}
		sort.Slice(rs, func(a, b int) bool {
			if rs[a].prio != rs[b].prio {
				return rs[a].prio > rs[b].prio
			}
			return rs[a].id < rs[b].id
		})
		out := make([]int, len(rs))
		for pos, r := range rs {
			out[r.id] = pos
		}
		return out
	}
	rd, rf := rank(det), rank(fa)
	moved := 0
	for i := range rd {
		if rd[i] != rf[i] {
			moved++
		}
	}
	fmt.Printf("failure-aware priorities move %d of %d tasks in the ranking\n\n", moved, g.NumTasks())

	schedule, err := makespan.ListSchedule(g, det, procs)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := makespan.FailureFreeMakespan(g)
	fmt.Printf("failure-free: critical path %.4f s, %d-proc schedule %.4f s\n\n", d, procs, schedule.Makespan)

	fmt.Println("simulating with silent errors (re-execution until the verification passes):")
	// The simulation lives behind cmd/schedsim for the full harness; here
	// we only need the one-shot deterministic schedules plus the expected
	// makespan approximation of the critical path to frame the comparison.
	fo, _ := makespan.FirstOrder(g, model)
	fmt.Printf("  expected makespan (unlimited procs, First Order): %.4f s\n", fo)
	fmt.Printf("  run 'go run ./cmd/schedsim -kind lu -k %d -procs %d -pfail %g -trials %d'\n",
		k, procs, pfail, trials)
	fmt.Println("  to compare both priority policies under failure injection.")
}
