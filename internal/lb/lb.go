// Package lb implements makespan-lb, the cluster front for a fleet of
// makespand replicas. It routes every /v1 request to a replica chosen
// by consistent hash of the request's canonical graph artifact key
// (service.RoutingSelector → "graph/sha256:…"), so all artifacts
// derived from one graph — frozen form, Dodin plan, estimators,
// schedules, snapshots — land in one replica's LRU byte budget and
// fleet cache capacity scales with the replica count. Because the
// estimators are deterministic and worker-invariant, *which* replica
// answers is unobservable: any replica produces the byte-identical
// response, which is what makes hedging and failover safe and is
// pinned by the multi-process e2e tests.
//
// The router keeps a registered-replica set (static -replicas list
// plus the POST /v1/replicas register/deregister route), health-checks
// every replica's /healthz on a period, ejects draining or dead
// replicas from the ring (they rejoin when they probe healthy again),
// hedges a slow request to the next ring sibling past a latency
// budget (first usable response wins, the loser's forward is
// cancelled — the replica aborts its kernels at the next chunk
// boundary via the context plumbing), and fails over immediately on
// transport errors or 5xx/429. Everything is observable: makespanlb_*
// metric families on GET /metrics and one structured access-log line
// per request carrying the serving replica.
package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// Config tunes a Router.
type Config struct {
	// Replicas is the static initial replica set (base URLs, e.g.
	// "http://127.0.0.1:8080"). More can register at runtime via
	// POST /v1/replicas.
	Replicas []string
	// HedgeAfter is the latency budget before a request is hedged to
	// the next ring sibling (0 selects 2s; < 0 disables hedging).
	// Each further budget expiry hedges to the next candidate, up to
	// MaxAttempts distinct replicas.
	HedgeAfter time.Duration
	// MaxAttempts caps the distinct replicas one request may touch
	// across hedges and failovers (0 selects 3).
	MaxAttempts int
	// CheckInterval is the health-check period (0 selects 1s; < 0
	// disables the periodic checker — tests drive checks directly).
	CheckInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (0 selects 500ms).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failed probes eject a
	// replica as dead (0 selects 2). Draining replicas are ejected on
	// the first draining probe — they told us they are leaving.
	FailThreshold int
	// Vnodes is the ring points per replica (0 selects 64).
	Vnodes int
	// Client issues the proxied upstream requests; nil selects a
	// dedicated client with no overall timeout (request contexts and
	// the hedging budget bound the work instead).
	Client *http.Client
	// AccessLog receives one structured line per front request (route,
	// status, serving replica, hedge/attempt counts, outcome). nil
	// disables access logging; metrics are collected either way.
	AccessLog io.Writer
}

// Router is the makespan-lb HTTP front. Create with New, mount via
// Handler, call Start to begin health checking and Close to stop it.
type Router struct {
	hedgeAfter time.Duration
	maxAtt     int
	checkEvery time.Duration
	probeT     time.Duration
	failThresh int
	vnodes     int

	client    *http.Client
	mux       *http.ServeMux
	handler   http.Handler
	metrics   *lbMetrics
	accessLog *log.Logger
	started   time.Time
	draining  atomic.Bool
	inflight  atomic.Int64

	mu       sync.Mutex
	replicas map[string]*replicaState
	ring     *ring
	genKeys  map[genKey]string // (kind,k) → routing key memo

	closeOnce sync.Once
	stop      chan struct{}
	checkDone chan struct{}
}

// replicaState tracks one registered replica. A replica leaves the
// ring (but stays registered) while unhealthy or draining; it rejoins
// when a probe answers 200 again — a restarted replica heals without
// re-registration.
type replicaState struct {
	base     string
	static   bool // from Config.Replicas, listed first in GET /v1/replicas
	healthy  bool
	draining bool
	fails    int
	lastErr  string
}

// New builds a router over the static replica set. The periodic health
// checker is not running yet — call Start.
func New(cfg Config) (*Router, error) {
	rt := &Router{
		hedgeAfter: cfg.HedgeAfter,
		maxAtt:     cfg.MaxAttempts,
		checkEvery: cfg.CheckInterval,
		probeT:     cfg.ProbeTimeout,
		failThresh: cfg.FailThreshold,
		vnodes:     cfg.Vnodes,
		client:     cfg.Client,
		mux:        http.NewServeMux(),
		started:    time.Now(),
		replicas:   make(map[string]*replicaState),
		genKeys:    make(map[genKey]string),
		stop:       make(chan struct{}),
	}
	if rt.hedgeAfter == 0 {
		rt.hedgeAfter = 2 * time.Second
	}
	if rt.maxAtt <= 0 {
		rt.maxAtt = 3
	}
	if rt.checkEvery == 0 {
		rt.checkEvery = time.Second
	}
	if rt.probeT <= 0 {
		rt.probeT = 500 * time.Millisecond
	}
	if rt.failThresh <= 0 {
		rt.failThresh = 2
	}
	if rt.vnodes <= 0 {
		rt.vnodes = defaultVnodes
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if cfg.AccessLog != nil {
		rt.accessLog = log.New(cfg.AccessLog, "", 0)
	}
	rt.metrics = newLBMetrics(rt)
	for _, base := range cfg.Replicas {
		norm, err := normalizeBase(base)
		if err != nil {
			return nil, fmt.Errorf("lb: bad replica %q: %w", base, err)
		}
		rt.replicas[norm] = &replicaState{base: norm, static: true, healthy: true}
	}
	rt.rebuildRingLocked()

	// The proxied routes mirror the makespand API surface, each with a
	// route-specific key extractor; the rest is the router's own.
	rt.route("POST /v1/graphs", "/v1/graphs", rt.proxyBodyKey(false))
	rt.route("GET /v1/graphs/{id}", "/v1/graphs/{id}", rt.proxyGraphID)
	rt.route("POST /v1/estimate", "/v1/estimate", rt.proxyBodyKey(false))
	rt.route("POST /v1/sweep", "/v1/sweep", rt.proxyBodyKey(true))
	rt.route("POST /v1/schedule", "/v1/schedule", rt.proxyBodyKey(false))
	rt.route("GET /v1/cache", "/v1/cache", rt.proxyPathKey)
	rt.route("GET /v1/replicas", "/v1/replicas", rt.handleListReplicas)
	rt.route("POST /v1/replicas", "/v1/replicas", rt.handleUpdateReplicas)
	rt.route("GET /healthz", "/healthz", rt.handleHealthz)
	rt.route("GET /metrics", "/metrics", rt.handleMetrics)
	rt.handler = rt.middleware(rt.mux)
	return rt, nil
}

// normalizeBase validates and canonicalizes a replica base URL so the
// same replica registered with cosmetic differences ("…/", mixed-case
// scheme) collapses onto one ring member.
func normalizeBase(base string) (string, error) {
	u, err := url.Parse(strings.TrimRight(base, "/"))
	if err != nil {
		return "", err
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("want absolute http(s) URL, got %q", base)
	}
	return strings.ToLower(u.Scheme) + "://" + u.Host, nil
}

// Start launches the periodic health checker (one immediate sweep,
// then every CheckInterval). A negative CheckInterval disables it.
func (rt *Router) Start() {
	if rt.checkEvery < 0 {
		return
	}
	rt.checkDone = make(chan struct{})
	go func() {
		defer close(rt.checkDone)
		rt.checkAll()
		t := time.NewTicker(rt.checkEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rt.checkAll()
			case <-rt.stop:
				return
			}
		}
	}()
}

// Close stops the health checker. Idempotent.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	if rt.checkDone != nil {
		<-rt.checkDone
	}
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// StartDrain flips the router into draining: /healthz answers 503 so
// the fleet's own front stops being routed to, while in-flight proxies
// finish. Idempotent, never blocks.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// InFlight reports the requests currently inside the handler stack.
func (rt *Router) InFlight() int64 { return rt.inflight.Load() }

// route registers a handler with a fixed route label for metrics and
// the access log (same bounded-cardinality convention as makespand).
func (rt *Router) route(pattern, label string, h http.HandlerFunc) {
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if ri := infoFrom(r.Context()); ri != nil {
			ri.route = label
		}
		h(w, r)
	})
}

// reqInfo is the per-request record the middleware logs: route label,
// the replica that served the winning response, and how many upstream
// attempts / hedges the request cost.
type reqInfo struct {
	route    string
	replica  string
	attempts int
	hedges   int
}

type reqInfoCtxKey struct{}

func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoCtxKey{}).(*reqInfo)
	return ri
}

// middleware wraps the mux with in-flight accounting and per-request
// observability: every front request lands in the makespanlb_* request
// families and, when configured, one access-log line naming the
// serving replica.
func (rt *Router) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{route: "other"}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoCtxKey{}, ri))
		rt.inflight.Add(1)
		defer rt.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rt.metrics.requests.With(ri.route, strconv.Itoa(status)).Inc()
		rt.metrics.latency.With(ri.route).Observe(time.Since(start).Seconds())
		if rt.accessLog != nil {
			outcome := "ok"
			if status >= 400 {
				outcome = "error"
			}
			replica := ri.replica
			if replica == "" {
				replica = "-"
			}
			rt.accessLog.Printf("event=request method=%s route=%s status=%d bytes=%d dur_ms=%.3f replica=%s attempts=%d hedges=%d outcome=%s",
				r.Method, ri.route, status, sw.bytes,
				float64(time.Since(start))/float64(time.Millisecond),
				replica, ri.attempts, ri.hedges, outcome)
		}
	})
}

// statusWriter records status and body bytes for the request metrics
// and access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// maxBodyBytes bounds a proxied request body (inline graphs included);
// makespand's own decoder enforces its stricter limits downstream.
const maxBodyBytes = 8 << 20

// proxyBodyKey proxies a POST whose routing key comes from the body's
// graph selector. sweepDefault selects the sweep route's convention:
// an empty selector means the default sweep spec, and must route to
// the replica owning that workload's artifacts.
func (rt *Router) proxyBodyKey(sweepDefault bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
			return
		}
		rt.forward(w, r, body, rt.bodyRoutingKey(r, body, sweepDefault))
	}
}

// bodyRoutingKey computes the shard key for a request body. Bodies the
// replica will reject (no selector, malformed JSON, unknown generator)
// still get a deterministic key — the replica, not the router, owns
// the 400; the router only promises that identical bodies route
// identically.
func (rt *Router) bodyRoutingKey(r *http.Request, body []byte, sweepDefault bool) string {
	sel, err := service.ExtractSelector(body)
	if err == nil && sel.IsZero() && sweepDefault {
		sel = service.DefaultSweepSelector()
	}
	if err == nil && !sel.IsZero() {
		if key, kerr := rt.selectorKey(sel); kerr == nil {
			return key
		}
	}
	return "opaque/" + r.URL.Path + "/" + strconv.FormatUint(hash64(string(body)), 16)
}

// genKey memoizes a generator-spec routing key: the named workloads
// are deterministic, so (kind, k) → key never changes.
type genKey struct {
	kind string
	k    int
}

// selectorKey computes a selector's routing key, memoizing generator
// specs so the hot path pays one map probe instead of generate +
// marshal + hash per request.
func (rt *Router) selectorKey(sel service.RoutingSelector) (string, error) {
	memoable := sel.GraphID == "" && len(sel.Graph) == 0 && sel.Kind != ""
	gk := genKey{kind: sel.Kind, k: sel.K}
	if memoable {
		rt.mu.Lock()
		key, ok := rt.genKeys[gk]
		rt.mu.Unlock()
		if ok {
			return key, nil
		}
	}
	key, err := sel.RoutingKey()
	if err != nil {
		return "", err
	}
	if memoable {
		rt.mu.Lock()
		rt.genKeys[gk] = key
		rt.mu.Unlock()
	}
	return key, nil
}

// proxyGraphID proxies GET /v1/graphs/{id}: the id *is* the content
// address, so the key is the graph artifact key directly.
func (rt *Router) proxyGraphID(w http.ResponseWriter, r *http.Request) {
	sel := service.RoutingSelector{GraphID: r.PathValue("id")}
	key, err := sel.RoutingKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.forward(w, r, nil, key)
}

// proxyPathKey proxies graph-less routes (GET /v1/cache) by path: any
// replica answers correctly, the hash only keeps the choice sticky.
func (rt *Router) proxyPathKey(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, nil, "path/"+r.URL.Path)
}

// candidates snapshots the hedging/failover candidate list for key:
// the shard owner first, then ring siblings in remap order.
func (rt *Router) candidates(key string) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.successors(key, rt.maxAtt)
}

// upstreamResult is one replica's answer to a forwarded request.
type upstreamResult struct {
	replica     string
	status      int
	contentType string
	retryAfter  string
	body        []byte
	err         error
}

// usable reports whether an upstream response settles the request:
// anything but 5xx and 429. 4xx responses are deterministic verdicts
// on the request itself — every replica would answer the same — so
// they win immediately rather than triggering failover.
func usable(status int) bool {
	return status < 500 && status != http.StatusTooManyRequests
}

// forward routes one request: dispatch to the shard owner, hedge to
// ring siblings past the latency budget, fail over instantly on
// transport errors and retryable statuses, first usable response wins
// and the losers' forwards are cancelled.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy replicas")
		return
	}
	ri := infoFrom(r.Context())
	res := rt.dispatch(r.Context(), r, body, cands, ri)
	if res == nil {
		writeError(w, http.StatusBadGateway, "all replicas failed")
		return
	}
	if res.err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("replica %s: %v", res.replica, res.err))
		return
	}
	if ri != nil {
		ri.replica = res.replica
	}
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// dispatch runs the hedged fan-out over the candidate list. It returns
// the first usable response, or the last failure when every candidate
// failed (so the client sees the upstream verdict, e.g. a fleet-wide
// 429), or nil when no attempt produced a response at all.
func (rt *Router) dispatch(ctx context.Context, r *http.Request, body []byte, cands []string, ri *reqInfo) *upstreamResult {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels every losing forward still in flight
	results := make(chan *upstreamResult, len(cands))
	next, inFlight := 0, 0
	launch := func() {
		replica := cands[next]
		next++
		inFlight++
		if ri != nil {
			ri.attempts++
		}
		go rt.attempt(ctx, r, body, replica, results)
	}
	launch()
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if rt.hedgeAfter > 0 {
		hedgeTimer = time.NewTimer(rt.hedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var last *upstreamResult
	for {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil && usable(res.status) {
				return res
			}
			rt.metrics.upstreamFailures.With(res.replica).Inc()
			last = res
			if next < len(cands) {
				rt.metrics.failovers.Inc()
				launch()
			} else if inFlight == 0 {
				return last
			}
		case <-hedgeC:
			if next < len(cands) {
				rt.metrics.hedges.With(cands[next]).Inc()
				if ri != nil {
					ri.hedges++
				}
				launch()
			}
			// Rearm: each further budget expiry hedges one step deeper
			// into the candidate list (a no-op once it is exhausted).
			hedgeTimer.Reset(rt.hedgeAfter)
		case <-ctx.Done():
			return &upstreamResult{replica: cands[0], err: ctx.Err()}
		}
	}
}

// attempt forwards the request to one replica and reports the result.
// The body is replayed from memory, so hedged duplicates are exact —
// and harmless: the estimation routes are deterministic, a duplicate
// can only warm a cache.
func (rt *Router) attempt(ctx context.Context, r *http.Request, body []byte, replica string, results chan<- *upstreamResult) {
	out := &upstreamResult{replica: replica}
	defer func() { results <- out }()
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, replica+r.URL.RequestURI(), reader)
	if err != nil {
		out.err = err
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		out.err = err
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		out.err = err
		return
	}
	out.status = resp.StatusCode
	out.contentType = resp.Header.Get("Content-Type")
	out.retryAfter = resp.Header.Get("Retry-After")
	out.body = b
	rt.metrics.upstream.With(replica, strconv.Itoa(resp.StatusCode)).Inc()
}

// rebuildRingLocked rebuilds the ring over the healthy, non-draining
// members. Caller holds rt.mu.
func (rt *Router) rebuildRingLocked() {
	members := make([]string, 0, len(rt.replicas))
	for base, st := range rt.replicas {
		if st.healthy && !st.draining {
			members = append(members, base)
		}
	}
	sort.Strings(members)
	rt.ring = newRing(members, rt.vnodes)
}

// register adds (or revives) a replica, optimistically healthy — the
// next health sweep demotes it if it is not. Reports whether the
// membership changed.
func (rt *Router) register(base string, static bool) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.replicas[base]
	if !ok {
		st = &replicaState{base: base, static: static}
		rt.replicas[base] = st
	}
	changed := !ok || !st.healthy || st.draining
	st.healthy = true
	st.draining = false
	st.fails = 0
	st.lastErr = ""
	if changed {
		rt.rebuildRingLocked()
	}
	return changed
}

// deregister removes a replica entirely. Reports whether it existed.
func (rt *Router) deregister(base string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.replicas[base]; !ok {
		return false
	}
	delete(rt.replicas, base)
	rt.rebuildRingLocked()
	return true
}

// checkAll probes every registered replica once and applies the
// verdicts: draining probes eject immediately, transport failures and
// bad statuses eject after failThresh consecutive misses, and a 200
// from an ejected replica re-admits it.
func (rt *Router) checkAll() {
	rt.mu.Lock()
	bases := make([]string, 0, len(rt.replicas))
	for base := range rt.replicas {
		bases = append(bases, base)
	}
	rt.mu.Unlock()
	sort.Strings(bases)
	for _, base := range bases {
		verdict, errMsg := rt.probe(base)
		rt.apply(base, verdict, errMsg)
	}
}

// probeVerdict classifies one health probe.
type probeVerdict int

const (
	probeHealthy probeVerdict = iota
	probeDraining
	probeFailed
)

// probe issues one GET /healthz against a replica.
func (rt *Router) probe(base string) (probeVerdict, string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeT)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return probeFailed, err.Error()
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return probeFailed, err.Error()
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusOK {
		return probeHealthy, ""
	}
	var h struct {
		Status string `json:"status"`
	}
	if resp.StatusCode == http.StatusServiceUnavailable &&
		json.Unmarshal(body, &h) == nil && h.Status == "draining" {
		return probeDraining, "draining"
	}
	return probeFailed, fmt.Sprintf("healthz status %d", resp.StatusCode)
}

// apply folds one probe verdict into the replica's state, rebuilding
// the ring and bumping the eject counter on transitions out.
func (rt *Router) apply(base string, verdict probeVerdict, errMsg string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.replicas[base]
	if !ok {
		return // deregistered while we probed
	}
	switch verdict {
	case probeHealthy:
		changed := !st.healthy || st.draining
		st.healthy, st.draining, st.fails, st.lastErr = true, false, 0, ""
		if changed {
			rt.rebuildRingLocked()
		}
	case probeDraining:
		if st.healthy && !st.draining {
			rt.metrics.ejects.With(base, "draining").Inc()
		}
		st.healthy, st.draining, st.lastErr = false, true, errMsg
		rt.rebuildRingLocked()
	case probeFailed:
		st.fails++
		st.lastErr = errMsg
		if st.fails >= rt.failThresh && st.healthy {
			st.healthy = false
			rt.metrics.ejects.With(base, "dead").Inc()
			rt.rebuildRingLocked()
		}
	}
}

// replicaJSON is one row of GET /v1/replicas.
type replicaJSON struct {
	Base     string `json:"base"`
	Static   bool   `json:"static"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	LastErr  string `json:"last_error,omitempty"`
}

// replicasResponse is the GET /v1/replicas body.
type replicasResponse struct {
	Replicas []replicaJSON `json:"replicas"`
	RingSize int           `json:"ring_size"`
}

func (rt *Router) handleListReplicas(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	out := replicasResponse{RingSize: rt.ring.size()}
	for _, st := range rt.replicas {
		out.Replicas = append(out.Replicas, replicaJSON{
			Base: st.base, Static: st.static, Healthy: st.healthy,
			Draining: st.draining, LastErr: st.lastErr,
		})
	}
	rt.mu.Unlock()
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i].Base < out.Replicas[j].Base })
	writeJSON(w, http.StatusOK, out)
}

// replicaUpdateRequest is the POST /v1/replicas body: register a base
// URL, or deregister it when deregister is true.
type replicaUpdateRequest struct {
	Base       string `json:"base"`
	Deregister bool   `json:"deregister,omitempty"`
}

func (rt *Router) handleUpdateReplicas(w http.ResponseWriter, r *http.Request) {
	var req replicaUpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	base, err := normalizeBase(req.Base)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad replica base: %v", err))
		return
	}
	if req.Deregister {
		if !rt.deregister(base) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("replica %q not registered", base))
			return
		}
	} else {
		rt.register(base, false)
	}
	rt.mu.Lock()
	resp := struct {
		Base       string `json:"base"`
		Registered bool   `json:"registered"`
		RingSize   int    `json:"ring_size"`
	}{Base: base, RingSize: rt.ring.size()}
	_, resp.Registered = rt.replicas[base]
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// lbHealthz is the GET /healthz body. Status is "ok", "draining"
// (SIGTERM received: stop routing here) or "no_healthy_replicas" (the
// front is up but the ring is empty — retryable, the fleet may still
// be starting).
type lbHealthz struct {
	Status             string `json:"status"`
	ReplicasRegistered int    `json:"replicas_registered"`
	RingReplicas       int    `json:"ring_replicas"`
	UptimeSeconds      int64  `json:"uptime_seconds"`
	Service            string `json:"service"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	registered, ringSize := len(rt.replicas), rt.ring.size()
	rt.mu.Unlock()
	status, state := http.StatusOK, "ok"
	switch {
	case rt.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case ringSize == 0:
		status, state = http.StatusServiceUnavailable, "no_healthy_replicas"
	}
	writeJSON(w, status, lbHealthz{
		Status:             state,
		ReplicasRegistered: registered,
		RingReplicas:       ringSize,
		UptimeSeconds:      int64(time.Since(rt.started).Seconds()),
		Service:            "makespan-lb/v1",
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
