package spgraph

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
)

// testdata/golden_pr1.json holds bit-exact Dodin and SweepUpper outputs
// captured from the pre-merge-kernel implementation (commit ec3a4bc).
// The rewritten reduction loop preserves the original reduction order
// exactly, so on graphs whose convolutions never produce a value tie the
// results still match bit for bit. Where ties exist — lattice weights,
// or two near-coincident support values whose sums round to the same
// double — the tie run is summed in whatever order the old unstable sort
// happened to pick, which no reimplementation can reproduce; those cases
// get an ULP budget per atom plus an absolute floor for noise-level tail
// probabilities, and 1e-12 relative on the estimate — far inside the
// 1e-9 acceptance bound.

type goldenDist struct {
	Name   string   `json:"name"`
	Est    uint64   `json:"est_bits"`
	Values []uint64 `json:"value_bits"`
	Probs  []uint64 `json:"prob_bits"`
	Dups   int      `json:"dups"`
	Reds   int      `json:"reds"`
}

type goldenScalar struct {
	Name string `json:"name"`
	Val  uint64 `json:"val_bits"`
}

type goldenFile struct {
	Dists   []goldenDist   `json:"dodin"`
	Scalars []goldenScalar `json:"scalars"`
}

func loadGolden(t *testing.T) goldenFile {
	t.Helper()
	raw, err := os.ReadFile("testdata/golden_pr1.json")
	if err != nil {
		t.Fatal(err)
	}
	var gf goldenFile
	if err := json.Unmarshal(raw, &gf); err != nil {
		t.Fatal(err)
	}
	return gf
}

// goldenGraphs mirrors the corpus the capture harness used.
func goldenGraphs(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	out["chain5_generic"] = dag.Chain(5, 1.37, 2.61, 0.93, 3.14159, 1.001)
	out["diamond_generic"] = dag.Diamond(1.1, 5.3, 3.7, 2.9)
	out["forkjoin5_generic"] = dag.ForkJoin(5, 0.7, 1.9, 2.3, 1.1, 0.45)
	n := dag.New(4)
	a := n.MustAddTask("a", 1)
	b := n.MustAddTask("b", 2)
	c := n.MustAddTask("c", 3)
	d := n.MustAddTask("d", 4)
	n.MustAddEdge(a, c)
	n.MustAddEdge(a, d)
	n.MustAddEdge(b, d)
	out["ngraph_lattice"] = n
	rng := rand.New(rand.NewSource(71))
	l15, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 15, EdgeProb: 0.5, MaxLayerWidth: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["layered15_random"] = l15
	l30, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 30, EdgeProb: 0.4, MaxLayerWidth: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["layered30_random"] = l30
	chol4, err := linalg.Cholesky(4, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	out["cholesky4_lattice"] = chol4
	lu5, err := linalg.LU(5, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	out["lu5_lattice"] = lu5
	out["wavefront3_lattice"] = dag.Wavefront(3, 1.0)
	out["wavefront4_lattice"] = dag.Wavefront(4, 1.0)
	fft8, err := dag.FFT(8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	out["fft8_lattice"] = fft8
	return out
}

func goldenUlps(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// tieFree lists the golden graphs whose reductions were verified to
// produce no convolution value ties: their results must reproduce the
// committed baseline bit for bit.
var tieFree = map[string]bool{
	"chain5_generic":    true,
	"diamond_generic":   true,
	"forkjoin5_generic": true,
	"layered15_random":  true,
}

// closeEnough tolerates tie-run resummation: a few ULPs, or absolute
// noise below 1e-15 for tail atoms whose relative error is meaningless.
func closeEnough(got float64, baseBits uint64) bool {
	base := math.Float64frombits(baseBits)
	if goldenUlps(math.Float64bits(got), baseBits) <= 16 {
		return true
	}
	return math.Abs(got-base) <= 1e-15*math.Max(1, math.Abs(base))
}

func TestDodinMatchesCommittedBaseline(t *testing.T) {
	gf := loadGolden(t)
	gs := goldenGraphs(t)
	caps := map[string]int{"uncapped": -1, "cap64": 0, "cap16": 16}
	for _, gd := range gf.Dists {
		var name, capName string
		for c := range caps {
			if len(gd.Name) > len(c)+1 && gd.Name[len(gd.Name)-len(c):] == c {
				capName = c
				name = gd.Name[:len(gd.Name)-len(c)-1]
			}
		}
		g, ok := gs[name]
		if !ok {
			t.Fatalf("golden %q references unknown graph", gd.Name)
		}
		m, err := failure.FromPfail(0.01, g.MeanWeight())
		if err != nil {
			t.Fatal(err)
		}
		res, stats, err := Dodin(g, m, caps[capName])
		if err != nil {
			t.Fatalf("%s: %v", gd.Name, err)
		}
		if stats.Duplications != gd.Dups || stats.Reductions != gd.Reds {
			t.Errorf("%s: dups/reds %d/%d, baseline %d/%d — reduction order changed",
				gd.Name, stats.Duplications, stats.Reductions, gd.Dups, gd.Reds)
		}
		strict := tieFree[name]
		base := math.Float64frombits(gd.Est)
		switch {
		case strict:
			// No ties anywhere in these reductions: every atom and the
			// estimate must reproduce the committed baseline bit for bit.
			if res.Distribution.Len() != len(gd.Values) {
				t.Fatalf("%s: %d atoms, baseline %d", gd.Name, res.Distribution.Len(), len(gd.Values))
			}
			for i := 0; i < res.Distribution.Len(); i++ {
				v, p := res.Distribution.Atom(i)
				if math.Float64bits(v) != gd.Values[i] || math.Float64bits(p) != gd.Probs[i] {
					t.Fatalf("%s: atom[%d] = (%v, %v) != baseline (%v, %v)", gd.Name, i, v, p,
						math.Float64frombits(gd.Values[i]), math.Float64frombits(gd.Probs[i]))
				}
			}
			if res.Estimate != base {
				t.Fatalf("%s: estimate %v != baseline %v", gd.Name, res.Estimate, base)
			}
		case capName == "uncapped":
			// Uncapped tie-prone: support values are exact sums (identical
			// in any order), only tie-run probabilities move by ULPs.
			if res.Distribution.Len() != len(gd.Values) {
				t.Fatalf("%s: %d atoms, baseline %d", gd.Name, res.Distribution.Len(), len(gd.Values))
			}
			for i := 0; i < res.Distribution.Len(); i++ {
				v, p := res.Distribution.Atom(i)
				if math.Float64bits(v) != gd.Values[i] {
					t.Fatalf("%s: value[%d] = %v != baseline %v", gd.Name, i, v, math.Float64frombits(gd.Values[i]))
				}
				if !closeEnough(p, gd.Probs[i]) {
					t.Fatalf("%s: prob[%d] = %v, %d ulps from baseline %v",
						gd.Name, i, p, goldenUlps(math.Float64bits(p), gd.Probs[i]), math.Float64frombits(gd.Probs[i]))
				}
			}
			if rel := math.Abs(res.Estimate-base) / math.Abs(base); rel > 1e-12 {
				t.Fatalf("%s: estimate %v drifted %v from baseline %v", gd.Name, res.Estimate, rel, base)
			}
		default:
			// Capped tie-prone: an ULP on a tie run can flip a bin-close
			// decision sitting exactly on the mass target, shifting bin
			// compositions — individual atoms are not pinnable, but the
			// binning is mean-preserving, so the estimate still is.
			if rel := math.Abs(res.Estimate-base) / math.Abs(base); rel > 1e-11 {
				t.Fatalf("%s: estimate %v drifted %v from baseline %v", gd.Name, res.Estimate, rel, base)
			}
			if diff := res.Distribution.Len() - len(gd.Values); diff < -2 || diff > 2 {
				t.Fatalf("%s: %d atoms, baseline %d", gd.Name, res.Distribution.Len(), len(gd.Values))
			}
			mass := 0.0
			for i := 0; i < res.Distribution.Len(); i++ {
				_, p := res.Distribution.Atom(i)
				mass += p
			}
			if math.Abs(mass-1) > 1e-9 {
				t.Fatalf("%s: mass %v", gd.Name, mass)
			}
		}
	}
}

func TestSweepUpperMatchesCommittedBaseline(t *testing.T) {
	gf := loadGolden(t)
	gs := goldenGraphs(t)
	for _, sc := range gf.Scalars {
		var name string
		var atoms int
		switch {
		case len(sc.Name) > 5 && sc.Name[len(sc.Name)-5:] == "/cap0":
			name, atoms = sc.Name[11:len(sc.Name)-5], 0
		case len(sc.Name) > 6 && sc.Name[len(sc.Name)-6:] == "/cap16":
			name, atoms = sc.Name[11:len(sc.Name)-6], 16
		default:
			t.Fatalf("bad scalar name %q", sc.Name)
		}
		g, ok := gs[name]
		if !ok {
			t.Fatalf("golden %q references unknown graph", sc.Name)
		}
		m, err := failure.FromPfail(0.01, g.MeanWeight())
		if err != nil {
			t.Fatal(err)
		}
		hi, err := bounds.SweepUpper(g, m, atoms)
		if err != nil {
			t.Fatal(err)
		}
		// SweepUpper convolves against 2-atom task distributions, so exact
		// value ties are 2-way and sum commutatively — but rounding can
		// collapse two near-coincident support sums into one double,
		// giving >= 3-way runs whose order-dependent ULP the baseline's
		// unstable sort fixed arbitrarily. Tie-free graphs must match
		// bits; the rest get the same ULP/noise budget as Dodin.
		if tieFree[name] {
			if math.Float64bits(hi) != sc.Val {
				t.Fatalf("%s: SweepUpper %v != baseline %v", sc.Name, hi, math.Float64frombits(sc.Val))
			}
		} else if rel := math.Abs(hi-math.Float64frombits(sc.Val)) / math.Abs(math.Float64frombits(sc.Val)); rel > 1e-11 {
			t.Fatalf("%s: SweepUpper %v drifted %v from baseline %v",
				sc.Name, hi, rel, math.Float64frombits(sc.Val))
		}
	}
}
