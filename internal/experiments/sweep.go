package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/failure"
	"repro/internal/linalg"
)

// SweepSpec is an extension experiment not in the paper: fix one graph and
// sweep the failure probability across decades, exposing the error-vs-λ
// scaling law of each estimator directly (First Order's error is O(λ²), so
// its relative-error curve must drop two decades per pfail decade until it
// hits the Monte Carlo noise floor).
type SweepSpec struct {
	Fact   linalg.Factorization
	K      int
	PFails []float64
}

// DefaultSweep sweeps LU k=10 across five decades of pfail.
func DefaultSweep() SweepSpec {
	return SweepSpec{
		Fact:   linalg.FactLU,
		K:      10,
		PFails: []float64{0.1, 0.01, 0.001, 0.0001, 0.00001},
	}
}

// SweepPoint is one pfail value of a sweep.
type SweepPoint struct {
	PFail  float64
	MCMean float64
	MCCI95 float64
	// MCTrials is the Monte Carlo budget the point actually spent (the
	// stopping point under Options.Tolerance, the fixed count otherwise).
	MCTrials int
	RelErr   map[Method]float64
	Time     map[Method]time.Duration
}

// SweepResult is a fully evaluated sweep.
type SweepResult struct {
	Spec   SweepSpec
	Tasks  int
	Trials int
	Points []SweepPoint
}

// RunSweep evaluates the sweep. All (pfail × method) cells and Monte
// Carlo runs share one generated graph and its frozen CSR form, and when
// Dodin is among the methods its reduction schedule is recorded once and
// replayed (bit-identically, see spgraph.Plan) at every other pfail —
// the schedule depends only on topology. Output is byte-identical for
// any Options.Workers. Shared state resolves through Options.Artifacts
// (a private throwaway store when nil).
func RunSweep(spec SweepSpec, opts Options) (SweepResult, error) {
	if opts.Artifacts == nil {
		opts.Artifacts = artifact.NewStore(0)
	}
	g, err := linalg.Generate(spec.Fact, spec.K, linalg.KernelTimes{})
	if err != nil {
		return SweepResult{}, err
	}
	ga, _, err := opts.Artifacts.GraphContext(opts.ctx(), g)
	if err != nil {
		return SweepResult{}, err
	}
	return RunSweepGraph(ga, spec, opts)
}

// RunSweepGraph evaluates the sweep on an explicit graph artifact
// instead of generating one from spec.Fact/spec.K (which then only
// label the result). This is the entry point of the makespand service:
// the registry hands in its store plus the request's graph artifact,
// and every shared object — the frozen CSR form, the Dodin reduction
// plan (one recording per (graph, atom cap), replayed bit-identically
// at every pfail) and the per-λ Monte Carlo estimators — is a resolver
// lookup, warm whenever any earlier request (sweep or not) built it.
// Results are bit-identical to RunSweep on an identical graph for any
// Options.Workers.
func RunSweepGraph(ga *artifact.Graph, spec SweepSpec, opts Options) (SweepResult, error) {
	if err := opts.normalize(); err != nil {
		return SweepResult{}, err
	}
	if opts.Artifacts == nil {
		return SweepResult{}, fmt.Errorf("experiments: RunSweepGraph needs Options.Artifacts (the store ga resolves through)")
	}
	if !ga.Frozen.UpToDate() {
		return SweepResult{}, fmt.Errorf("experiments: sweep graph mutated after freeze")
	}
	g := ga.G
	ctxs := make([]*pointCtx, len(spec.PFails))
	for i, pf := range spec.PFails {
		model, err := failure.FromPfail(pf, g.MeanWeight())
		if err != nil {
			return SweepResult{}, err
		}
		// Each pfail point gets its own derived seed: reusing opts.Seed
		// verbatim correlates the Monte Carlo noise across the sweep, so
		// every point of the error-vs-λ plot would share one noise floor.
		ctxs[i] = &pointCtx{g: g, frozen: ga.Frozen, st: opts.Artifacts, ga: ga, model: model, k: spec.K, pfail: pf, seed: pointSeed(opts.Seed, i)}
	}
	wantsDodin := false
	for _, m := range opts.Methods {
		if m == MethodDodin {
			wantsDodin = true
		}
	}
	if wantsDodin && len(ctxs) > 0 {
		// Resolve the reduction schedule once, as untimed sweep setup —
		// warm when any earlier sweep or estimate recorded it — and
		// replay it at every point, including the first, so the
		// per-point Dodin timings all measure the same (replay) work and
		// stay comparable across pfail.
		plan, err := opts.Artifacts.PlanContext(opts.ctx(), ga, opts.DodinMaxAtoms, ctxs[0].model)
		if err != nil {
			return SweepResult{}, fmt.Errorf("sweep %s pfail=%g: %w", MethodDodin, ctxs[0].pfail, err)
		}
		for _, ctx := range ctxs {
			ctx.plan = plan
		}
	}
	var progress func(int, Point)
	if opts.Progress != nil {
		progress = func(i int, p Point) {
			opts.Progress(fmt.Sprintf("sweep: %s k=%d pfail=%g done", spec.Fact, spec.K, spec.PFails[i]))
		}
	}
	points, err := runPoints(ctxs, opts, progress)
	if err != nil {
		return SweepResult{}, fmt.Errorf("sweep: %w", err)
	}
	res := SweepResult{Spec: spec, Tasks: g.NumTasks(), Trials: opts.Trials}
	for i, p := range points {
		res.Points = append(res.Points, SweepPoint{
			PFail:    spec.PFails[i],
			MCMean:   p.MCMean,
			MCCI95:   p.MCCI95,
			MCTrials: p.MCTrials,
			RelErr:   p.RelErr,
			Time:     p.Time,
		})
	}
	return res, nil
}

// pointSeed derives an independent per-point seed from the user's seed
// and the sweep-point index via the SplitMix64 finalizer, so distinct
// points draw decorrelated Monte Carlo streams while a fixed opts.Seed
// still reproduces the whole sweep.
func pointSeed(seed uint64, point int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(point+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// WriteSweep renders a sweep as an aligned text table.
func WriteSweep(w io.Writer, r SweepResult, methods []Method) error {
	if len(methods) == 0 {
		methods = sortedSweepMethods(r.Points)
	}
	adaptive := r.Trials == 0 // per-point counts differ; show a column
	var b strings.Builder
	if adaptive {
		fmt.Fprintf(&b, "Extension sweep: %s k=%d (%d tasks), relative error vs pfail (MC trials: adaptive)\n",
			FactLabel(r.Spec.Fact), r.Spec.K, r.Tasks)
	} else {
		fmt.Fprintf(&b, "Extension sweep: %s k=%d (%d tasks), relative error vs pfail (MC trials: %d)\n",
			FactLabel(r.Spec.Fact), r.Spec.K, r.Tasks, r.Trials)
	}
	fmt.Fprintf(&b, "%-10s %-14s %-10s", "pfail", "MC mean", "MC ±95%")
	if adaptive {
		fmt.Fprintf(&b, " %-9s", "trials")
	}
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", string(m))
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10g %-14.6g %-10.3g", p.PFail, p.MCMean, p.MCCI95)
		if adaptive {
			fmt.Fprintf(&b, " %-9d", p.MCTrials)
		}
		for _, m := range methods {
			fmt.Fprintf(&b, " %14s", formatRelErr(p.RelErr[m]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedSweepMethods(points []SweepPoint) []Method {
	if len(points) == 0 {
		return nil
	}
	var out []Method
	for _, m := range AllMethods() {
		if _, ok := points[0].RelErr[m]; ok {
			out = append(out, m)
		}
	}
	return out
}
