package montecarlo

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/faultinject"
)

// Snapshot is the resumable state of an adaptive run: the number of whole
// chunks folded so far, their merged Welford accumulator, and their merged
// quantile sketch. Because the engine folds chunks strictly in index order
// and chunk RNG streams depend only on (Seed, chunk), a snapshot at k
// chunks is exactly the intermediate state of ANY longer run with the same
// seed — extending it from chunk k is bit-identical to a cold run of the
// larger chunk count (see adaptive_test.go). That is what lets the
// makespand registry tighten a stored estimate without re-running the
// trials it already paid for.
//
// Snapshots are immutable once returned: ResumeAdaptive deep-copies its
// input and returns a fresh value, so a stored snapshot can be shared
// across concurrent readers and extension runs.
type Snapshot struct {
	frozen *dag.Frozen // identity of the compiled graph the chunks ran on
	seed   uint64
	mode   Mode
	chunks int64
	acc    Welford
	sketch *QuantileSketch
}

// Chunks returns the number of whole trial chunks folded into the snapshot.
func (s *Snapshot) Chunks() int64 { return s.chunks }

// Trials returns the number of trials folded into the snapshot
// (Chunks · ChunkTrials; adaptive runs are always chunk-aligned).
func (s *Snapshot) Trials() int { return int(s.acc.N()) }

// Seed returns the RNG seed the snapshot's chunks were drawn with.
func (s *Snapshot) Seed() uint64 { return s.seed }

// Mode returns the re-execution model the snapshot's trials sampled.
func (s *Snapshot) Mode() Mode { return s.mode }

// Sketch returns an independent copy of the snapshot's merged quantile
// sketch, safe to query and mutate without affecting the snapshot.
func (s *Snapshot) Sketch() *QuantileSketch { return s.sketch.Clone() }

// Clone returns an independent deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.sketch = s.sketch.Clone()
	return &c
}

// SizeBytes reports the approximate retained heap size of the snapshot
// (dominated by the sketch's cell array; the frozen graph is shared with
// its owner and accounted there). Registry entries use it for artifact
// accounting.
func (s *Snapshot) SizeBytes() int64 {
	return int64(len(s.sketch.cells))*8 + 192
}

// checkSnapshot verifies that snap was produced by an estimator sharing
// this estimator's compiled snapshot, seed and mode — the conditions under
// which extending it reproduces a cold run bit-identically.
func (e *Estimator) checkSnapshot(snap *Snapshot) error {
	if snap.frozen != e.frozen {
		return fmt.Errorf("montecarlo: snapshot from a different compiled graph")
	}
	if snap.seed != e.cfg.Seed {
		return fmt.Errorf("montecarlo: snapshot seed %d does not match config seed %d", snap.seed, e.cfg.Seed)
	}
	if snap.mode != e.cfg.Mode {
		return fmt.Errorf("montecarlo: snapshot mode %v does not match config mode %v", snap.mode, e.cfg.Mode)
	}
	return nil
}

// snapshotCI returns the half-width of the stopping statistic's confidence
// interval at the snapshot's current trial count: the TargetQuantile's
// order-statistic interval from the sketch, or the mean's normal interval.
// ok is false while too few samples exist to form the interval.
func (e *Estimator) snapshotCI(s *Snapshot) (ci float64, ok bool) {
	if s.chunks == 0 {
		return 0, false
	}
	if q := e.cfg.TargetQuantile; q > 0 {
		lo, hi, err := s.sketch.QuantileCI(q, e.cfg.Confidence)
		if err != nil {
			return 0, false
		}
		return (hi - lo) / 2, true
	}
	z := normalQuantile(0.5 + e.cfg.Confidence/2)
	return z * s.acc.StdErr(), true
}

// converged reports whether the snapshot satisfies the estimator's
// stopping rule (Tolerance at Confidence on the target statistic).
func (e *Estimator) converged(s *Snapshot) bool {
	ci, ok := e.snapshotCI(s)
	return ok && ci <= e.cfg.Tolerance
}

// SnapshotConverged reports whether snap already satisfies this
// estimator's adaptive stopping rule, without running any trials. False
// when snap belongs to a different (graph, seed, mode). The service uses
// it to decide between serving a stored snapshot and extending it.
func (e *Estimator) SnapshotConverged(snap *Snapshot) bool {
	return e.checkSnapshot(snap) == nil && e.converged(snap)
}

// SnapshotResult returns the Result an adaptive run stopping at snap's
// state would report under this estimator's configuration, without
// running trials. The service uses it to derive per-request results —
// each with its own tolerance's Converged/AchievedCI — from one shared
// run's snapshot.
func (e *Estimator) SnapshotResult(snap *Snapshot) (Result, error) {
	if !e.cfg.Adaptive() {
		return Result{}, fmt.Errorf("montecarlo: SnapshotResult needs an adaptive config (Tolerance > 0)")
	}
	if err := e.checkSnapshot(snap); err != nil {
		return Result{}, err
	}
	return e.adaptiveResult(snap), nil
}

func (e *Estimator) adaptiveResult(s *Snapshot) Result {
	res := resultFrom(s.acc)
	if ci, ok := e.snapshotCI(s); ok {
		res.AchievedCI = ci
		res.Converged = ci <= e.cfg.Tolerance
	}
	return res
}

// chunkStat is one chunk's contribution, produced by whichever worker ran
// it and folded by the reducer in chunk-index order.
type chunkStat struct {
	c      int64
	acc    Welford
	sketch *QuantileSketch
}

// ResumeAdaptive runs the estimator's adaptive stopping loop, optionally
// continuing from a previous snapshot, and returns the final result plus
// the snapshot to store for later extension. The config must be adaptive
// (Tolerance > 0); prev may be nil for a cold start and must come from the
// same (compiled graph, Seed, Mode) otherwise. prev is never mutated.
//
// Whole ChunkTrials-sized chunks are executed by Workers goroutines, but
// their statistics are folded strictly in chunk-index order, and the
// stopping decision is re-evaluated only after each in-order fold — so the
// stopping chunk count is a deterministic function of (Seed, Mode,
// stopping rule) alone, and the returned Result is bit-identical to a
// fixed-budget run of the same chunk count for any worker count. Chunks
// that workers started speculatively past the stopping point are
// discarded. The MaxTrials cap always binds; a run reaching it returns
// with Result.Converged reporting whether the tolerance was also met.
//
// progress, when non-nil, replaces the estimator's own stopping check: it
// is called after every in-order fold (and once before the first chunk)
// with the current snapshot and returns true to stop. The snapshot passed
// in is live — callers retaining it past the call must Clone it. The
// service's coalescer uses progress to unblock each waiting request as
// soon as the shared run satisfies that request's tolerance.
//
// A prev snapshot that already satisfies the stopping rule (or already
// holds MaxTrials) returns immediately with no trials run — the warm
// cache-hit path.
func (e *Estimator) ResumeAdaptive(prev *Snapshot, progress func(*Snapshot) bool) (Result, *Snapshot, error) {
	return e.ResumeAdaptiveContext(context.Background(), prev, progress)
}

// ResumeAdaptiveContext is ResumeAdaptive with cancellation, honored at
// chunk boundaries. A run cancelled before the stopping rule fires
// returns ctx.Err() with neither Result nor Snapshot: the chunks it
// paid for are discarded whole, so the caller's stored snapshot (prev,
// which is never mutated) stays valid and a retry extends it
// bit-identically. If the stopping decision lands before the
// cancellation is observed, the completed prefix is returned normally.
func (e *Estimator) ResumeAdaptiveContext(ctx context.Context, prev *Snapshot, progress func(*Snapshot) bool) (Result, *Snapshot, error) {
	if err := e.fresh(); err != nil {
		return Result{}, nil, err
	}
	if !e.cfg.Adaptive() {
		return Result{}, nil, fmt.Errorf("montecarlo: ResumeAdaptive needs an adaptive config (Tolerance > 0)")
	}
	var cur *Snapshot
	if prev != nil {
		if err := e.checkSnapshot(prev); err != nil {
			return Result{}, nil, err
		}
		cur = prev.Clone()
	} else {
		cur = &Snapshot{
			frozen: e.frozen,
			seed:   e.cfg.Seed,
			mode:   e.cfg.Mode,
			sketch: NewQuantileSketch(DefaultSketchCells),
		}
	}
	stop := func() bool {
		if progress != nil {
			return progress(cur)
		}
		return e.converged(cur)
	}
	maxChunks := int64(e.cfg.MaxTrials / chunkSize)
	if cur.chunks >= maxChunks || stop() {
		return e.adaptiveResult(cur), cur, nil
	}

	// Workers pull chunk indices from next, bounded by limit; limit drops
	// to the stopping point once the in-order reducer decides to stop, so
	// in-flight speculation drains quickly. Results flow over a channel to
	// this goroutine, which holds out-of-order chunks in pending and folds
	// them in index order.
	workers := e.cfg.Workers
	if int64(workers) > maxChunks-cur.chunks {
		workers = int(maxChunks - cur.chunks)
	}
	if workers < 1 {
		workers = 1
	}
	results := make(chan chunkStat, workers)
	done := ctx.Done()
	var next, limit atomic.Int64
	var abort atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}
	next.Store(cur.chunks)
	limit.Store(maxChunks)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := e.newWorker()
			for {
				c := next.Add(1) - 1
				if c >= limit.Load() {
					return
				}
				if done != nil {
					if abort.Load() {
						return
					}
					select {
					case <-done:
						fail(ctx.Err())
						return
					default:
					}
				}
				if faultinject.Enabled() {
					if abort.Load() {
						return
					}
					if err := faultinject.Hit(ctx, "mc.chunk"); err != nil {
						fail(err)
						return
					}
				}
				wk.runChunk(newChunkRNG(e.cfg.Seed, c), int(c)*chunkSize, int(c+1)*chunkSize)
				st := chunkStat{c: c, sketch: NewQuantileSketch(DefaultSketchCells)}
				for _, x := range wk.res {
					st.acc.Add(x)
					st.sketch.Add(x)
				}
				results <- st
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int64]chunkStat)
	stopped := false
	for st := range results {
		if stopped || st.c >= limit.Load() {
			continue // speculative chunk past the stopping point
		}
		pending[st.c] = st
		for !stopped {
			nst, ok := pending[cur.chunks]
			if !ok {
				break
			}
			delete(pending, cur.chunks)
			cur.acc.Merge(nst.acc)
			cur.sketch.Merge(nst.sketch)
			cur.chunks++
			if cur.chunks >= maxChunks || stop() {
				stopped = true
				limit.Store(cur.chunks)
			}
		}
	}
	if !stopped && cur.chunks < maxChunks {
		// The only way the chunk stream dries up before the stopping rule
		// fires is a worker aborting on cancellation or an injected fault.
		// Discard the partial fold entirely: no Result, no Snapshot.
		if firstErr != nil {
			return Result{}, nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return Result{}, nil, err
		}
	}
	return e.adaptiveResult(cur), cur, nil
}

// normalQuantile returns the standard normal inverse CDF at p ∈ (0,1)
// (Acklam's rational approximation, relative error < 1.15e-9 — far below
// the binomial normal-approximation error it feeds).
func normalQuantile(p float64) float64 {
	const (
		a1   = -3.969683028665376e+01
		a2   = 2.209460984245205e+02
		a3   = -2.759285104469687e+02
		a4   = 1.383577518672690e+02
		a5   = -3.066479806614716e+01
		a6   = 2.506628277459239e+00
		b1   = -5.447609879822406e+01
		b2   = 1.615858368580409e+02
		b3   = -1.556989798598866e+02
		b4   = 6.680131188771972e+01
		b5   = -1.328068155288572e+01
		c1   = -7.784894002430293e-03
		c2   = -3.223964580411365e-01
		c3   = -2.400758277161838e+00
		c4   = -2.549732539343734e+00
		c5   = 4.374664141464968e+00
		c6   = 2.938163982698783e+00
		d1   = 7.784695709041462e-03
		d2   = 3.224671290700398e-01
		d3   = 2.445134137142996e+00
		d4   = 3.754408661907416e+00
		pLow = 0.02425
	)
	switch {
	case !(p > 0 && p < 1):
		return math.NaN()
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}
