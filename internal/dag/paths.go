package dag

import "math"

// Reachability is a dense successor-reachability matrix: Reach(u, v)
// reports whether v is reachable from u by a non-empty directed path or
// u == v. Rows are bitsets, so memory is V²/8 bytes.
type Reachability struct {
	n    int
	bits [][]uint64
}

// NewReachability computes the reachability closure of g in O(V·E/64).
func NewReachability(g *Graph) (*Reachability, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	words := (n + 63) / 64
	bits := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for i := range bits {
		bits[i] = backing[i*words : (i+1)*words]
	}
	// Process in reverse topological order: reach(u) = {u} ∪ ⋃ reach(s).
	for k := n - 1; k >= 0; k-- {
		u := order[k]
		row := bits[u]
		row[u/64] |= 1 << (uint(u) % 64)
		for _, s := range g.succ[u] {
			srow := bits[s]
			for w := range row {
				row[w] |= srow[w]
			}
		}
	}
	return &Reachability{n: n, bits: bits}, nil
}

// Reach reports whether v is reachable from u (u == v counts as reachable).
func (r *Reachability) Reach(u, v int) bool {
	return r.bits[u][v/64]&(1<<(uint(v)%64)) != 0
}

// Comparable reports whether u and v lie on a common path (one reaches the
// other). Tasks that are not comparable can never both lengthen the same
// path, which the second-order approximation exploits.
func (r *Reachability) Comparable(u, v int) bool {
	return r.Reach(u, v) || r.Reach(v, u)
}

// AllPairsLongest holds, for every ordered pair (u,v), the length of the
// longest u→v path counting both endpoint weights, or -Inf if v is not
// reachable from u. Memory is 8·V² bytes; intended for the graph sizes of
// the paper (≤ a few thousand tasks).
type AllPairsLongest struct {
	n    int
	dist []float64 // row-major n×n
}

// NewAllPairsLongest computes all-pairs longest paths in O(V·(V+E)).
func NewAllPairsLongest(g *Graph) (*AllPairsLongest, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	apl := &AllPairsLongest{n: n, dist: make([]float64, n*n)}
	ninf := math.Inf(-1)
	for i := range apl.dist {
		apl.dist[i] = ninf
	}
	// One forward DP per source u, visiting only positions at or after u in
	// topological order.
	pos := make([]int, n)
	for idx, v := range order {
		pos[v] = idx
	}
	for u := 0; u < n; u++ {
		row := apl.dist[u*n : (u+1)*n]
		row[u] = g.weights[u]
		for k := pos[u]; k < n; k++ {
			v := order[k]
			if row[v] == ninf {
				continue
			}
			for _, s := range g.succ[v] {
				if c := row[v] + g.weights[s]; c > row[s] {
					row[s] = c
				}
			}
		}
	}
	return apl, nil
}

// Dist returns the longest u→v path length (inclusive of both endpoints),
// or -Inf when v is unreachable from u. Dist(u,u) is the weight of u.
func (a *AllPairsLongest) Dist(u, v int) float64 {
	return a.dist[u*a.n+v]
}

// CountPaths returns the number of distinct source-to-sink paths, saturating
// at math.MaxFloat64. This is the quantity that makes exhaustive makespan
// enumeration infeasible and motivates the paper's approximation.
func CountPaths(g *Graph) (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	n := g.NumTasks()
	count := make([]float64, n)
	total := 0.0
	for _, v := range order {
		if len(g.pred[v]) == 0 {
			count[v] = 1
		}
		for _, p := range g.pred[v] {
			count[v] += count[p]
		}
		if len(g.succ[v]) == 0 {
			total += count[v]
		}
	}
	if math.IsInf(total, 1) {
		total = math.MaxFloat64
	}
	return total, nil
}
