package dag

import "math"

// Reachability is a dense successor-reachability matrix: Reach(u, v)
// reports whether v is reachable from u by a non-empty directed path or
// u == v. Rows are bitsets, so memory is V²/8 bytes.
type Reachability struct {
	n    int
	bits [][]uint64
}

// NewReachability computes the reachability closure of g in O(V·E/64).
func NewReachability(g *Graph) (*Reachability, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	words := (n + 63) / 64
	bits := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for i := range bits {
		bits[i] = backing[i*words : (i+1)*words]
	}
	// Process in reverse topological order: reach(u) = {u} ∪ ⋃ reach(s).
	for k := n - 1; k >= 0; k-- {
		u := order[k]
		row := bits[u]
		row[u/64] |= 1 << (uint(u) % 64)
		for _, s := range g.succ[u] {
			srow := bits[s]
			for w := range row {
				row[w] |= srow[w]
			}
		}
	}
	return &Reachability{n: n, bits: bits}, nil
}

// Reach reports whether v is reachable from u (u == v counts as reachable).
func (r *Reachability) Reach(u, v int) bool {
	return r.bits[u][v/64]&(1<<(uint(v)%64)) != 0
}

// Comparable reports whether u and v lie on a common path (one reaches the
// other). Tasks that are not comparable can never both lengthen the same
// path, which the second-order approximation exploits.
func (r *Reachability) Comparable(u, v int) bool {
	return r.Reach(u, v) || r.Reach(v, u)
}

// AllPairsLongest holds, for every ordered pair (u,v), the length of the
// longest u→v path counting both endpoint weights, or -Inf if v is not
// reachable from u. Memory is 8·V² bytes (transiently 16·V² during
// construction when the graph was not built in topological order);
// intended for the graph sizes of the paper (≤ a few thousand tasks).
// The DP runs in topological order so
// it streams the frozen CSR adjacency; the matrix is then permuted back to
// task-ID order once (a no-op for graphs built in topo order) so Dist stays
// a direct index in the O(V²) consumer loops.
type AllPairsLongest struct {
	n    int
	dist []float64 // row-major n×n, both axes task-ID order
}

// NewAllPairsLongest computes all-pairs longest paths in O(V·(V+E)).
func NewAllPairsLongest(g *Graph) (*AllPairsLongest, error) {
	f, err := Freeze(g)
	if err != nil {
		return nil, err
	}
	return NewAllPairsLongestFrozen(f), nil
}

// NewAllPairsLongestFrozen computes all-pairs longest paths on an existing
// Frozen, sharing the compiled graph with other consumers.
func NewAllPairsLongestFrozen(f *Frozen) *AllPairsLongest {
	n := f.NumTasks()
	apl := &AllPairsLongest{n: n, dist: make([]float64, n*n)}
	ninf := math.Inf(-1)
	for i := range apl.dist {
		apl.dist[i] = ninf
	}
	// One forward DP per source position, visiting only later positions.
	for ku := 0; ku < n; ku++ {
		row := apl.dist[ku*n : (ku+1)*n]
		row[ku] = f.wTopo[ku]
		for k := ku; k < n; k++ {
			if row[k] == ninf {
				continue
			}
			for _, s := range f.SuccTopo(k) {
				if c := row[k] + f.wTopo[s]; c > row[s] {
					row[s] = c
				}
			}
		}
	}
	if !f.identity {
		// Permute both axes from topo positions back to task IDs.
		byID := make([]float64, n*n)
		for ku := 0; ku < n; ku++ {
			row := apl.dist[ku*n : (ku+1)*n]
			dst := byID[f.TaskID(ku)*n:]
			for kv, d := range row {
				dst[f.TaskID(kv)] = d
			}
		}
		apl.dist = byID
	}
	return apl
}

// Dist returns the longest u→v path length (inclusive of both endpoints),
// or -Inf when v is unreachable from u. Dist(u,u) is the weight of u.
func (a *AllPairsLongest) Dist(u, v int) float64 {
	return a.dist[u*a.n+v]
}

// CountPaths returns the number of distinct source-to-sink paths, saturating
// at math.MaxFloat64. This is the quantity that makes exhaustive makespan
// enumeration infeasible and motivates the paper's approximation.
func CountPaths(g *Graph) (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	n := g.NumTasks()
	count := make([]float64, n)
	total := 0.0
	for _, v := range order {
		if len(g.pred[v]) == 0 {
			count[v] = 1
		}
		for _, p := range g.pred[v] {
			count[v] += count[p]
		}
		if len(g.succ[v]) == 0 {
			total += count[v]
		}
	}
	if math.IsInf(total, 1) {
		total = math.MaxFloat64
	}
	return total, nil
}
